// Package interconnect models the inter-socket fabric of a NUMA machine,
// with per-hop latency, per-link bandwidth, and packet-size accounting
// matching Table II of the C3D paper (20 ns per hop, 25.6 GB/s per link,
// 16-byte control packets and 80-byte data packets).
//
// Topologies are pluggable: a registry maps names to TopologySpecs, and the
// built-ins cover the paper's two shapes (point-to-point for 2 sockets, ring
// for 4) plus generalized mesh and fully-connected fabrics for 2-16 sockets.
// A spec instantiates into a Layout — the directed link set plus a
// precomputed next-hop table — so routing on the message hot path is two
// array reads per hop regardless of topology. See TopologySpec for how to
// register a new topology without touching this package's dispatch.
//
// The fabric is where the NUMA bottleneck lives: every remote-memory access,
// directory lookup, forwarded block, snoop and invalidation crosses it, and
// the experiments in Figs. 8–9 (and the socket-scaling study) report
// precisely the byte counts this package accumulates.
package interconnect

import (
	"fmt"

	"c3d/internal/sim"
)

// MessageClass distinguishes small control packets from data-carrying ones
// for traffic accounting.
type MessageClass int

const (
	// Control messages are requests, acknowledgements, invalidations:
	// 16 bytes on the wire.
	Control MessageClass = iota
	// Data messages carry a 64-byte cache block plus header: 80 bytes.
	Data
)

// Bytes returns the on-wire size of the message class.
func (m MessageClass) Bytes() int {
	switch m {
	case Control:
		return ControlBytes
	case Data:
		return DataBytes
	default:
		panic(fmt.Sprintf("interconnect: unknown message class %d", int(m)))
	}
}

func (m MessageClass) String() string {
	switch m {
	case Control:
		return "control"
	case Data:
		return "data"
	default:
		return fmt.Sprintf("MessageClass(%d)", int(m))
	}
}

const (
	// ControlBytes is the wire size of a control packet (Table II).
	ControlBytes = 16
	// DataBytes is the wire size of a data packet (Table II).
	DataBytes = 80
)

// Config describes the fabric.
type Config struct {
	Sockets  int
	Topology Topology
	// HopLatency is the one-way latency per hop. Table II models 20 ns
	// (the measured ~40-50 ns socket-to-socket round trip divided between
	// the two directions).
	HopLatency sim.Cycles
	// LinkBandwidthGBs is the bandwidth of each directed link; zero or
	// negative models infinite bandwidth (Fig. 2's "inf_qpi_bw").
	LinkBandwidthGBs float64
}

// Validate checks that the topology is registered and can host the socket
// count.
func (c Config) Validate() error {
	if c.Sockets < 1 {
		return fmt.Errorf("interconnect: need at least one socket, got %d", c.Sockets)
	}
	return SupportsSockets(c.Topology, c.Sockets)
}

// DefaultConfig returns the Table II fabric for the given socket count —
// point-to-point for 2 sockets, ring beyond, 20 ns per hop, 25.6 GB/s links —
// or an error when no default topology hosts the count (fewer than 1 or more
// than 16 sockets). Callers wanting a non-default topology set Config.Topology
// themselves and Validate it.
func DefaultConfig(sockets int) (Config, error) {
	topo, err := DefaultTopology(sockets)
	if err != nil {
		return Config{}, err
	}
	return Config{
		Sockets:          sockets,
		Topology:         topo,
		HopLatency:       sim.NsToCycles(20),
		LinkBandwidthGBs: 25.6,
	}, nil
}

// Stats accumulates fabric traffic.
type Stats struct {
	Messages      uint64
	ControlMsgs   uint64
	DataMsgs      uint64
	TotalBytes    uint64
	ControlBytes  uint64
	DataBytes     uint64
	HopsTraversed uint64
}

// Fabric is the inter-socket interconnect instance.
type Fabric struct {
	cfg Config
	// links is a dense matrix of directed links indexed from*Sockets+to; nil
	// entries are socket pairs with no direct link. A flat slice keeps the
	// per-hop link lookup on the message hot path free of map hashing.
	links []*sim.Resource
	// next is the topology's precomputed next-hop table (Layout.Next) and
	// hops the per-pair hop counts derived from walking it.
	next  []int
	hops  []int
	stats Stats
	// zeroLatency models the Fig. 2 "0_qpi_lat" idealisation.
	zeroLatency bool
}

// New builds a fabric from cfg. It panics when the configuration does not
// validate (an unregistered topology, or a socket count the topology cannot
// host) — fabric construction happens inside machine construction, where the
// configuration has already been validated.
func New(cfg Config) *Fabric {
	if err := cfg.Validate(); err != nil {
		panic(err.Error())
	}
	spec, err := topologySpec(cfg.Topology)
	if err != nil {
		panic("interconnect: " + err.Error())
	}
	n := cfg.Sockets
	layout := spec.Build(n)
	if layout.Sockets != n || len(layout.Next) != n*n {
		panic(fmt.Sprintf("interconnect: topology %q built a malformed layout for %d sockets", cfg.Topology, n))
	}
	f := &Fabric{cfg: cfg, links: make([]*sim.Resource, n*n), next: layout.Next}
	bpc := sim.GBsToBytesPerCycle(cfg.LinkBandwidthGBs)
	for _, l := range layout.Links {
		a, b := l[0], l[1]
		f.checkSocket(a)
		f.checkSocket(b)
		if a != b && f.links[a*n+b] == nil {
			f.links[a*n+b] = sim.NewResource(fmt.Sprintf("link%d-%d", a, b), bpc)
		}
	}
	f.hops = hopTable(layout)
	// Every routed hop must have a link, or Send would dereference nil deep
	// in the hot loop; catch a malformed registration here instead.
	for from := 0; from < n; from++ {
		for to := 0; to < n; to++ {
			if from == to {
				continue
			}
			if nh := f.next[from*n+to]; f.links[from*n+nh] == nil {
				panic(fmt.Sprintf("interconnect: topology %q routes %d->%d via missing link %d->%d",
					cfg.Topology, from, to, from, nh))
			}
		}
	}
	return f
}

// hopTable derives per-pair hop counts by walking the next-hop table,
// panicking on routes that do not terminate within Sockets-1 hops (a cycle in
// a malformed layout).
func hopTable(l Layout) []int {
	n := l.Sockets
	hops := make([]int, n*n)
	for from := 0; from < n; from++ {
		for to := 0; to < n; to++ {
			cur, count := from, 0
			for cur != to {
				cur = l.Next[cur*n+to]
				count++
				if count >= n {
					panic(fmt.Sprintf("interconnect: route %d->%d does not terminate", from, to))
				}
			}
			hops[from*n+to] = count
		}
	}
	return hops
}

// Config returns the fabric's configuration.
func (f *Fabric) Config() Config { return f.cfg }

// Topology returns the fabric's topology.
func (f *Fabric) Topology() Topology { return f.cfg.Topology }

// Stats returns a snapshot of the accumulated traffic.
func (f *Fabric) Stats() Stats { return f.stats }

// LinkCount returns the number of directed links the topology instantiated —
// the per-topology cost side of the latency/cost trade-off (a fully
// connected fabric has N*(N-1) links, a ring 2N).
func (f *Fabric) LinkCount() int {
	count := 0
	for _, l := range f.links {
		if l != nil {
			count++
		}
	}
	return count
}

// Diameter returns the largest hop count between any socket pair.
func (f *Fabric) Diameter() int {
	max := 0
	for _, h := range f.hops {
		if h > max {
			max = h
		}
	}
	return max
}

// ResetStats clears traffic counters and link occupancy.
func (f *Fabric) ResetStats() {
	f.stats = Stats{}
	for _, l := range f.links {
		if l != nil {
			l.Reset()
		}
	}
}

// Reset returns the fabric to its just-constructed state. The fabric holds no
// state beyond counters and link occupancy, so this is ResetStats under the
// name the machine-reuse path expects; latency/bandwidth idealisations
// survive, matching construction-time configuration.
func (f *Fabric) Reset() { f.ResetStats() }

// SetZeroLatency removes the per-hop latency (Fig. 2 "0_qpi_lat").
func (f *Fabric) SetZeroLatency() { f.zeroLatency = true }

// SetInfiniteBandwidth removes link bandwidth limits (Fig. 2 "inf_qpi_bw").
func (f *Fabric) SetInfiniteBandwidth() {
	for _, l := range f.links {
		if l != nil {
			l.SetInfinite()
		}
	}
}

// Hops returns the number of fabric hops between two sockets (0 if they are
// the same socket).
func (f *Fabric) Hops(from, to int) int {
	f.checkSocket(from)
	f.checkSocket(to)
	return f.hops[from*f.cfg.Sockets+to]
}

// Send models one message travelling from socket `from` to socket `to`
// starting at now. It returns the arrival time at the destination. Traffic
// statistics account every link the message crosses; latency is per-hop
// latency plus any queueing on each link. Sending to the local socket is
// free and generates no traffic.
func (f *Fabric) Send(now sim.Time, from, to int, class MessageClass) sim.Time {
	if from == to {
		return now
	}
	f.checkSocket(from)
	f.checkSocket(to)
	n := f.cfg.Sockets
	bytes := class.Bytes()
	f.stats.Messages++
	switch class {
	case Control:
		f.stats.ControlMsgs++
	case Data:
		f.stats.DataMsgs++
	}
	t := now
	cur := from
	for cur != to {
		next := f.next[cur*n+to]
		f.stats.HopsTraversed++
		f.stats.TotalBytes += uint64(bytes)
		switch class {
		case Control:
			f.stats.ControlBytes += uint64(bytes)
		case Data:
			f.stats.DataBytes += uint64(bytes)
		}
		link := f.links[cur*n+next]
		_, done := link.Acquire(t, bytes)
		if !f.zeroLatency {
			done = done.Add(f.cfg.HopLatency)
		}
		t = done
		cur = next
	}
	return t
}

// RoundTrip models a request/response pair: a control request from `from` to
// `to` followed by a response of the given class back to `from`. It returns
// the time the response arrives.
func (f *Fabric) RoundTrip(now sim.Time, from, to int, response MessageClass) sim.Time {
	arrive := f.Send(now, from, to, Control)
	return f.Send(arrive, to, from, response)
}

// Broadcast sends a control message from `from` to every other socket and
// returns the time at which the last destination has received it, along with
// the per-destination arrival times indexed by socket id (the entry for
// `from` is now).
func (f *Fabric) Broadcast(now sim.Time, from int, class MessageClass) (last sim.Time, arrivals []sim.Time) {
	arrivals = make([]sim.Time, f.cfg.Sockets)
	last = now
	for s := 0; s < f.cfg.Sockets; s++ {
		if s == from {
			arrivals[s] = now
			continue
		}
		t := f.Send(now, from, s, class)
		arrivals[s] = t
		if t > last {
			last = t
		}
	}
	return last, arrivals
}

// LinkStats returns occupancy statistics for every directed link, in
// deterministic (from, to) order.
func (f *Fabric) LinkStats() []sim.ResourceStats {
	var out []sim.ResourceStats
	for _, l := range f.links {
		if l != nil {
			out = append(out, l.Stats())
		}
	}
	return out
}

func (f *Fabric) checkSocket(s int) {
	if s < 0 || s >= f.cfg.Sockets {
		panic(fmt.Sprintf("interconnect: socket %d out of range [0,%d)", s, f.cfg.Sockets))
	}
}
