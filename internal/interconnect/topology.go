package interconnect

import (
	"fmt"
	"sort"
	"sync"
)

// Topology names a registered fabric topology. The value is the registry key:
// comparing, printing and parsing all go through the same string, so a
// topology added by RegisterTopology is immediately usable everywhere a
// built-in one is (machine configs, CLI flags, the daemon's JobSpec).
type Topology string

// The built-in topologies.
const (
	// PointToPoint directly connects the two sockets of the paper's 2-socket
	// configuration (every pair is one hop apart).
	PointToPoint Topology = "p2p"
	// Ring connects socket i to sockets (i±1) mod N, mirroring commodity
	// AMD/Intel designs; the paper's 4-socket configuration uses it.
	Ring Topology = "ring"
	// Mesh arranges the sockets in a 2D grid with links between grid
	// neighbours and deterministic XY routing (column first, then row).
	Mesh Topology = "mesh"
	// FullyConnected links every socket pair directly: one hop everywhere,
	// at the cost of N*(N-1) directed links.
	FullyConnected Topology = "full"
)

func (t Topology) String() string { return string(t) }

// Layout is a topology instantiated for a concrete socket count: the directed
// link set plus the precomputed next-hop table the fabric walks on every
// message. Layouts are built once at fabric construction, so routing on the
// hot path is two array reads per hop.
type Layout struct {
	// Sockets is the socket count the layout was built for.
	Sockets int
	// Links lists every directed link as a {from, to} pair. Order does not
	// matter (the fabric stores links in a dense matrix); duplicates are
	// ignored.
	Links [][2]int
	// Next is the dense next-hop table: Next[from*Sockets+to] is the socket
	// a message at `from` heading for `to` crosses next (Next[i*Sockets+i]
	// is i). Every (from, Next[from*Sockets+to]) pair must be a link.
	Next []int
}

// TopologySpec describes one registered topology: its identity, the socket
// counts it can host, and how to build a Layout for one of them.
//
// To add a topology, register a spec from an init function:
//
//	func init() {
//		interconnect.RegisterTopology(interconnect.TopologySpec{
//			Name:        "torus",
//			Description: "2D torus with wraparound links",
//			MinSockets:  4,
//			MaxSockets:  16,
//			Build:       buildTorus,
//		})
//	}
//
// Nothing else changes: ParseTopology accepts the new name, Topologies()
// lists it, machine.Config.Topology / c3dsim -topology / the daemon JobSpec
// route to it, and the fabric drives it through the same precomputed
// next-hop tables as the built-ins.
type TopologySpec struct {
	// Name is the registry key ("p2p", "ring", ...).
	Name Topology
	// Description is a one-line summary for listings.
	Description string
	// Rank orders Topologies(): lower first, ties broken by name. The
	// built-ins use 0-3; unset (0) third-party specs sort with them by name.
	Rank int
	// MinSockets and MaxSockets bound the socket counts the topology hosts.
	MinSockets, MaxSockets int
	// Build returns the layout for a socket count within the bounds. It is
	// only called with supported counts.
	Build func(sockets int) Layout
}

var (
	topoMu  sync.RWMutex
	topoReg = make(map[Topology]TopologySpec)
)

// RegisterTopology adds a topology to the registry. It panics on a duplicate
// name or a malformed spec — registration happens in init functions, where
// misconfiguration should fail loudly.
func RegisterTopology(spec TopologySpec) {
	if spec.Name == "" {
		panic("interconnect: RegisterTopology with empty name")
	}
	if spec.Build == nil {
		panic(fmt.Sprintf("interconnect: topology %q has no Build function", spec.Name))
	}
	if spec.MinSockets < 1 || spec.MaxSockets < spec.MinSockets {
		panic(fmt.Sprintf("interconnect: topology %q has invalid socket bounds [%d,%d]",
			spec.Name, spec.MinSockets, spec.MaxSockets))
	}
	topoMu.Lock()
	defer topoMu.Unlock()
	if _, dup := topoReg[spec.Name]; dup {
		panic(fmt.Sprintf("interconnect: topology %q registered twice", spec.Name))
	}
	topoReg[spec.Name] = spec
}

// topologySpec returns the spec registered under t.
func topologySpec(t Topology) (TopologySpec, error) {
	topoMu.RLock()
	spec, ok := topoReg[t]
	topoMu.RUnlock()
	if !ok {
		return TopologySpec{}, fmt.Errorf("unknown topology %q (known: %v)", string(t), Topologies())
	}
	return spec, nil
}

// ParseTopology converts a topology name back into a Topology, mirroring
// machine.ParseDesign: only registered names parse.
func ParseTopology(s string) (Topology, error) {
	if _, err := topologySpec(Topology(s)); err != nil {
		return "", fmt.Errorf("interconnect: %w", err)
	}
	return Topology(s), nil
}

// Topologies returns every registered topology in deterministic order:
// ascending Rank, ties broken by name.
func Topologies() []Topology {
	topoMu.RLock()
	specs := make([]TopologySpec, 0, len(topoReg))
	for _, spec := range topoReg {
		specs = append(specs, spec)
	}
	topoMu.RUnlock()
	sort.Slice(specs, func(i, j int) bool {
		if specs[i].Rank != specs[j].Rank {
			return specs[i].Rank < specs[j].Rank
		}
		return specs[i].Name < specs[j].Name
	})
	out := make([]Topology, len(specs))
	for i, s := range specs {
		out[i] = s.Name
	}
	return out
}

// SupportsSockets reports whether the topology can host the given socket
// count, with a descriptive error when it cannot.
func SupportsSockets(t Topology, sockets int) error {
	spec, err := topologySpec(t)
	if err != nil {
		return fmt.Errorf("interconnect: %w", err)
	}
	if sockets < spec.MinSockets || sockets > spec.MaxSockets {
		return fmt.Errorf("interconnect: topology %q hosts %d-%d sockets, not %d",
			string(t), spec.MinSockets, spec.MaxSockets, sockets)
	}
	return nil
}

// DefaultTopology returns the topology a machine of the given socket count
// uses when none is selected: point-to-point for one or two sockets (the
// paper's 2-socket shape) and a ring beyond that (the paper's 4-socket
// shape), up to the 16-socket ceiling of the built-in fabrics.
func DefaultTopology(sockets int) (Topology, error) {
	switch {
	case sockets < 1:
		return "", fmt.Errorf("interconnect: need at least one socket, got %d", sockets)
	case sockets <= 2:
		return PointToPoint, nil
	case sockets <= maxFabricSockets:
		return Ring, nil
	default:
		return "", fmt.Errorf("interconnect: no default topology hosts %d sockets (max %d); pick one explicitly",
			sockets, maxFabricSockets)
	}
}

// maxFabricSockets is the ceiling of the built-in topologies. It bounds the
// precomputed route tables, not anything fundamental: a registered topology
// may set its own MaxSockets.
const maxFabricSockets = 16

// --- built-in layout builders ---

func init() {
	RegisterTopology(TopologySpec{
		Name:        PointToPoint,
		Description: "direct link between two sockets (the paper's 2-socket shape)",
		Rank:        0,
		MinSockets:  1,
		MaxSockets:  2,
		Build:       buildFullyConnected,
	})
	RegisterTopology(TopologySpec{
		Name:        Ring,
		Description: "bidirectional ring, shorter direction wins, ties clockwise (the paper's 4-socket shape)",
		Rank:        1,
		MinSockets:  3,
		MaxSockets:  maxFabricSockets,
		Build:       buildRing,
	})
	RegisterTopology(TopologySpec{
		Name:        Mesh,
		Description: "2D mesh with XY routing (column first, then row)",
		Rank:        2,
		MinSockets:  2,
		MaxSockets:  maxFabricSockets,
		Build:       buildMesh,
	})
	RegisterTopology(TopologySpec{
		Name:        FullyConnected,
		Description: "every socket pair directly linked: one hop everywhere",
		Rank:        3,
		MinSockets:  2,
		MaxSockets:  maxFabricSockets,
		Build:       buildFullyConnected,
	})
}

// buildFullyConnected links every pair directly; the next hop is always the
// destination. It also serves the degenerate 1- and 2-socket point-to-point
// shapes.
func buildFullyConnected(n int) Layout {
	l := Layout{Sockets: n, Next: make([]int, n*n)}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			l.Next[i*n+j] = j
			if i != j {
				l.Links = append(l.Links, [2]int{i, j})
			}
		}
	}
	return l
}

// buildRing links socket i to (i±1) mod n and routes along the shorter
// direction, breaking ties clockwise — exactly the walk the pre-registry
// fabric performed, so ring results are bit-identical to it.
func buildRing(n int) Layout {
	l := Layout{Sockets: n, Next: make([]int, n*n)}
	for i := 0; i < n; i++ {
		l.Links = append(l.Links, [2]int{i, (i + 1) % n}, [2]int{(i + 1) % n, i})
	}
	for from := 0; from < n; from++ {
		for to := 0; to < n; to++ {
			switch {
			case from == to:
				l.Next[from*n+to] = from
			default:
				cw := (to - from + n) % n
				ccw := (from - to + n) % n
				if ccw < cw {
					l.Next[from*n+to] = (from + n - 1) % n
				} else {
					l.Next[from*n+to] = (from + 1) % n
				}
			}
		}
	}
	return l
}

// meshGrid picks the mesh's shape for n sockets: the most square exact
// factorisation rows x cols with rows <= cols. Exact factorisation keeps the
// grid perfect (no missing corner), which keeps XY routing valid for every
// pair; prime counts degenerate to a 1 x n chain.
func meshGrid(n int) (rows, cols int) {
	rows = 1
	for r := 2; r*r <= n; r++ {
		if n%r == 0 {
			rows = r
		}
	}
	return rows, n / rows
}

// buildMesh lays the sockets out row-major on the meshGrid shape, links grid
// neighbours, and routes XY: first along the row to the destination column,
// then along the column. XY routing is deterministic and deadlock-free, and
// the hop count is the Manhattan distance.
func buildMesh(n int) Layout {
	rows, cols := meshGrid(n)
	l := Layout{Sockets: n, Next: make([]int, n*n)}
	for s := 0; s < n; s++ {
		r, c := s/cols, s%cols
		if c+1 < cols {
			l.Links = append(l.Links, [2]int{s, s + 1}, [2]int{s + 1, s})
		}
		if r+1 < rows {
			l.Links = append(l.Links, [2]int{s, s + cols}, [2]int{s + cols, s})
		}
	}
	for from := 0; from < n; from++ {
		fr, fc := from/cols, from%cols
		for to := 0; to < n; to++ {
			_, tc := to/cols, to%cols
			switch {
			case from == to:
				l.Next[from*n+to] = from
			case fc < tc:
				l.Next[from*n+to] = from + 1
			case fc > tc:
				l.Next[from*n+to] = from - 1
			case fr < to/cols:
				l.Next[from*n+to] = from + cols
			default:
				l.Next[from*n+to] = from - cols
			}
		}
	}
	return l
}
