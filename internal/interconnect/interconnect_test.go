package interconnect

import (
	"strings"
	"testing"
	"testing/quick"

	"c3d/internal/sim"
)

// mustDefault builds the default fabric config for a socket count, failing
// the test on error.
func mustDefault(t *testing.T, sockets int) Config {
	t.Helper()
	cfg, err := DefaultConfig(sockets)
	if err != nil {
		t.Fatalf("DefaultConfig(%d): %v", sockets, err)
	}
	return cfg
}

// fabricFor builds a Table II fabric with an explicit topology.
func fabricFor(t *testing.T, sockets int, topo Topology) *Fabric {
	t.Helper()
	cfg := Config{Sockets: sockets, Topology: topo, HopLatency: sim.NsToCycles(20), LinkBandwidthGBs: 25.6}
	if err := cfg.Validate(); err != nil {
		t.Fatalf("config %d sockets %s: %v", sockets, topo, err)
	}
	return New(cfg)
}

func TestDefaultConfig(t *testing.T) {
	c2 := mustDefault(t, 2)
	if c2.Topology != PointToPoint || c2.Sockets != 2 {
		t.Errorf("2-socket default %+v", c2)
	}
	c4 := mustDefault(t, 4)
	if c4.Topology != Ring || c4.Sockets != 4 {
		t.Errorf("4-socket default %+v", c4)
	}
	if c4.HopLatency != 60 {
		t.Errorf("20ns hop should be 60 cycles, got %v", c4.HopLatency)
	}
	if c16 := mustDefault(t, 16); c16.Topology != Ring {
		t.Errorf("16-socket default %+v", c16)
	}
}

// TestDefaultConfigAndValidateRejectUnsupportedShapes is the table-driven
// guard against silently producing configs for shapes no topology hosts.
func TestDefaultConfigAndValidateRejectUnsupportedShapes(t *testing.T) {
	defaults := []struct {
		sockets int
		wantErr string
	}{
		{-1, "at least one socket"},
		{0, "at least one socket"},
		{17, "no default topology"},
		{64, "no default topology"},
	}
	for _, c := range defaults {
		_, err := DefaultConfig(c.sockets)
		if err == nil || !strings.Contains(err.Error(), c.wantErr) {
			t.Errorf("DefaultConfig(%d) = %v, want error containing %q", c.sockets, err, c.wantErr)
		}
	}

	validates := []struct {
		cfg     Config
		wantErr string
	}{
		{Config{Sockets: 0, Topology: Ring}, "at least one socket"},
		{Config{Sockets: 4, Topology: "hypercube"}, "unknown topology"},
		{Config{Sockets: 4, Topology: ""}, "unknown topology"},
		{Config{Sockets: 2, Topology: Ring}, "hosts 3-16 sockets, not 2"},
		{Config{Sockets: 3, Topology: PointToPoint}, "hosts 1-2 sockets, not 3"},
		{Config{Sockets: 17, Topology: Mesh}, "hosts 2-16 sockets, not 17"},
		{Config{Sockets: 1, Topology: FullyConnected}, "hosts 2-16 sockets, not 1"},
	}
	for _, c := range validates {
		err := c.cfg.Validate()
		if err == nil || !strings.Contains(err.Error(), c.wantErr) {
			t.Errorf("Validate(%d sockets, %q) = %v, want error containing %q",
				c.cfg.Sockets, c.cfg.Topology, err, c.wantErr)
		}
	}

	// Every registered topology validates across its full declared range.
	for _, topo := range Topologies() {
		spec, err := topologySpec(topo)
		if err != nil {
			t.Fatal(err)
		}
		for n := spec.MinSockets; n <= spec.MaxSockets; n++ {
			if err := (Config{Sockets: n, Topology: topo}).Validate(); err != nil {
				t.Errorf("%s@%d should validate: %v", topo, n, err)
			}
		}
	}
}

func TestParseTopologyAndListing(t *testing.T) {
	want := []Topology{PointToPoint, Ring, Mesh, FullyConnected}
	got := Topologies()
	if len(got) != len(want) {
		t.Fatalf("Topologies() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Topologies() = %v, want %v", got, want)
		}
	}
	for _, topo := range want {
		parsed, err := ParseTopology(topo.String())
		if err != nil || parsed != topo {
			t.Errorf("ParseTopology(%q) = %v, %v", topo, parsed, err)
		}
	}
	if _, err := ParseTopology("moebius"); err == nil {
		t.Error("unknown topology name should fail to parse")
	}
}

func TestMessageClassBytes(t *testing.T) {
	if Control.Bytes() != 16 || Data.Bytes() != 80 {
		t.Errorf("packet sizes %d/%d", Control.Bytes(), Data.Bytes())
	}
	if Control.String() != "control" || Data.String() != "data" {
		t.Error("stringers")
	}
	if PointToPoint.String() != "p2p" || Ring.String() != "ring" ||
		Mesh.String() != "mesh" || FullyConnected.String() != "full" {
		t.Error("topology stringers")
	}
}

func TestInvalidClassPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	MessageClass(42).Bytes()
}

func TestNewPanicsOnBadSocketCount(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	New(Config{Sockets: 0, Topology: Ring})
}

func TestHopsP2P(t *testing.T) {
	f := New(mustDefault(t, 2))
	if f.Hops(0, 0) != 0 || f.Hops(0, 1) != 1 || f.Hops(1, 0) != 1 {
		t.Error("p2p hop counts wrong")
	}
}

func TestHopsRing4(t *testing.T) {
	f := New(mustDefault(t, 4))
	cases := []struct{ from, to, want int }{
		{0, 0, 0}, {0, 1, 1}, {0, 2, 2}, {0, 3, 1},
		{1, 3, 2}, {2, 0, 2}, {3, 0, 1}, {3, 1, 2},
	}
	for _, c := range cases {
		if got := f.Hops(c.from, c.to); got != c.want {
			t.Errorf("Hops(%d,%d) = %d, want %d", c.from, c.to, got, c.want)
		}
	}
}

// TestHopCountsPerTopology pins hop counts for every built-in topology at the
// socket counts the scaling study sweeps (2, 4, 8, 16).
func TestHopCountsPerTopology(t *testing.T) {
	cases := []struct {
		topo           Topology
		sockets        int
		from, to, want int
	}{
		// Ring: shorter direction, so the diameter is n/2.
		{Ring, 4, 0, 2, 2},
		{Ring, 8, 0, 4, 4},
		{Ring, 8, 0, 5, 3},
		{Ring, 8, 7, 1, 2},
		{Ring, 16, 0, 8, 8},
		{Ring, 16, 15, 3, 4},
		// Mesh: Manhattan distance on the meshGrid shape.
		{Mesh, 2, 0, 1, 1},   // 1x2 chain
		{Mesh, 4, 0, 3, 2},   // 2x2: (0,0)->(1,1)
		{Mesh, 4, 1, 2, 2},   // 2x2: (0,1)->(1,0)
		{Mesh, 8, 0, 7, 4},   // 2x4: (0,0)->(1,3)
		{Mesh, 8, 3, 4, 4},   // 2x4: (0,3)->(1,0)
		{Mesh, 8, 0, 3, 3},   // 2x4: along the row
		{Mesh, 16, 0, 15, 6}, // 4x4: corner to corner
		{Mesh, 16, 0, 12, 3}, // 4x4: down one column
		// Fully connected: always one hop.
		{FullyConnected, 2, 0, 1, 1},
		{FullyConnected, 4, 0, 3, 1},
		{FullyConnected, 8, 0, 7, 1},
		{FullyConnected, 16, 0, 15, 1},
		// Point-to-point at its two supported counts.
		{PointToPoint, 2, 0, 1, 1},
		{PointToPoint, 2, 1, 0, 1},
	}
	for _, c := range cases {
		f := fabricFor(t, c.sockets, c.topo)
		if got := f.Hops(c.from, c.to); got != c.want {
			t.Errorf("%s@%d Hops(%d,%d) = %d, want %d", c.topo, c.sockets, c.from, c.to, got, c.want)
		}
	}
}

// TestRoutesTerminateAndAccount walks every pair of every topology at 2, 4,
// 8 and 16 sockets: hop counts must be symmetric-range sane, and a Send must
// account exactly hops x class-bytes on the wire.
func TestRoutesTerminateAndAccount(t *testing.T) {
	for _, topo := range Topologies() {
		for _, n := range []int{2, 4, 8, 16} {
			if SupportsSockets(topo, n) != nil {
				continue
			}
			f := fabricFor(t, n, topo)
			for from := 0; from < n; from++ {
				for to := 0; to < n; to++ {
					hops := f.Hops(from, to)
					if from == to && hops != 0 {
						t.Fatalf("%s@%d Hops(%d,%d) = %d, want 0", topo, n, from, to, hops)
					}
					if from != to && (hops < 1 || hops >= n) {
						t.Fatalf("%s@%d Hops(%d,%d) = %d out of range", topo, n, from, to, hops)
					}
					before := f.Stats().TotalBytes
					f.Send(0, from, to, Data)
					sent := f.Stats().TotalBytes - before
					if want := uint64(hops * DataBytes); sent != want {
						t.Fatalf("%s@%d Send(%d,%d) accounted %d bytes, want %d", topo, n, from, to, sent, want)
					}
				}
			}
		}
	}
}

// TestLinkCounts pins the per-topology link cost: ring 2N, fully connected
// N(N-1), mesh 2*(rows*(cols-1) + cols*(rows-1)).
func TestLinkCounts(t *testing.T) {
	cases := []struct {
		topo    Topology
		sockets int
		want    int
	}{
		{PointToPoint, 2, 2},
		{Ring, 4, 8},
		{Ring, 8, 16},
		{FullyConnected, 4, 12},
		{FullyConnected, 8, 56},
		{Mesh, 4, 8},   // 2x2
		{Mesh, 8, 20},  // 2x4: 2*(2*3 + 4*1)
		{Mesh, 16, 48}, // 4x4: 2*(4*3)*2
	}
	for _, c := range cases {
		f := fabricFor(t, c.sockets, c.topo)
		if got := f.LinkCount(); got != c.want {
			t.Errorf("%s@%d LinkCount = %d, want %d", c.topo, c.sockets, got, c.want)
		}
	}
}

// TestRingTieBreaksClockwise pins the pre-registry routing rule: at equal
// distance the ring routes clockwise (ascending socket ids), so the 0->1
// link carries the tied 0->2 message on a 4-ring.
func TestRingTieBreaksClockwise(t *testing.T) {
	f := New(mustDefault(t, 4))
	f.Send(0, 0, 2, Data)
	for _, ls := range f.LinkStats() {
		switch ls.Name {
		case "link0-1", "link1-2":
			if ls.BytesServed != DataBytes {
				t.Errorf("%s served %d bytes, want %d", ls.Name, ls.BytesServed, DataBytes)
			}
		default:
			if ls.BytesServed != 0 {
				t.Errorf("%s served %d bytes, want 0", ls.Name, ls.BytesServed)
			}
		}
	}
}

func TestMeshGridShapes(t *testing.T) {
	cases := []struct{ n, rows, cols int }{
		{2, 1, 2}, {4, 2, 2}, {6, 2, 3}, {8, 2, 4}, {9, 3, 3},
		{12, 3, 4}, {16, 4, 4}, {7, 1, 7}, {15, 3, 5},
	}
	for _, c := range cases {
		rows, cols := meshGrid(c.n)
		if rows != c.rows || cols != c.cols {
			t.Errorf("meshGrid(%d) = %dx%d, want %dx%d", c.n, rows, cols, c.rows, c.cols)
		}
	}
}

func TestSendLocalIsFree(t *testing.T) {
	f := New(mustDefault(t, 4))
	if got := f.Send(100, 2, 2, Data); got != 100 {
		t.Errorf("local send took time: %v", got)
	}
	if f.Stats().Messages != 0 {
		t.Error("local send should not count as traffic")
	}
}

func TestSendOneHopLatency(t *testing.T) {
	f := New(mustDefault(t, 2))
	got := f.Send(0, 0, 1, Control)
	// 16 bytes at 25.6GB/s (~8.5 B/cyc) is ~2 cycles plus 60 cycles hop.
	if got < 60 || got > 65 {
		t.Errorf("one-hop control latency = %v, want ~62", got)
	}
	st := f.Stats()
	if st.Messages != 1 || st.ControlMsgs != 1 || st.ControlBytes != 16 || st.HopsTraversed != 1 {
		t.Errorf("stats %+v", st)
	}
}

func TestSendTwoHopRing(t *testing.T) {
	f := New(mustDefault(t, 4))
	one := f.Send(0, 0, 1, Data)
	two := f.Send(0, 0, 2, Data)
	if two <= one {
		t.Errorf("2-hop message should take longer than 1-hop: %v vs %v", two, one)
	}
	// Two hops of 60 cycles each plus transfer times and queueing behind
	// the first message on the shared 0->1 link.
	if two < 120 || two > 155 {
		t.Errorf("two-hop data latency = %v, want ~120-150", two)
	}
}

func TestTrafficBytesAccountPerHop(t *testing.T) {
	f := New(mustDefault(t, 4))
	f.Send(0, 0, 2, Data) // 2 hops x 80 bytes
	if got := f.Stats().TotalBytes; got != 160 {
		t.Errorf("total bytes = %d, want 160", got)
	}
	if got := f.Stats().DataBytes; got != 160 {
		t.Errorf("data bytes = %d, want 160", got)
	}
}

func TestZeroLatency(t *testing.T) {
	f := New(mustDefault(t, 4))
	f.SetZeroLatency()
	got := f.Send(0, 0, 2, Control)
	// Only transfer occupancy remains (a few cycles).
	if got > 10 {
		t.Errorf("zero-latency send took %v", got)
	}
	if f.Stats().TotalBytes == 0 {
		t.Error("zero latency must still account traffic")
	}
}

func TestInfiniteBandwidthStillHasLatency(t *testing.T) {
	f := New(mustDefault(t, 2))
	f.SetInfiniteBandwidth()
	got := f.Send(0, 0, 1, Data)
	if got != 60 {
		t.Errorf("inf-bw one-hop latency = %v, want exactly 60", got)
	}
}

func TestLinkContention(t *testing.T) {
	f := New(mustDefault(t, 2))
	// Saturate the 0->1 link with many data messages issued at time 0.
	var last sim.Time
	for i := 0; i < 200; i++ {
		last = f.Send(0, 0, 1, Data)
	}
	single := New(mustDefault(t, 2)).Send(0, 0, 1, Data)
	if last < single*3 {
		t.Errorf("no contention visible: last=%v single=%v", last, single)
	}
}

func TestRoundTrip(t *testing.T) {
	f := New(mustDefault(t, 2))
	done := f.RoundTrip(0, 0, 1, Data)
	// Roughly two hop latencies plus transfer times.
	if done < 120 || done > 145 {
		t.Errorf("round trip = %v, want ~130", done)
	}
	st := f.Stats()
	if st.Messages != 2 || st.ControlMsgs != 1 || st.DataMsgs != 1 {
		t.Errorf("stats %+v", st)
	}
}

func TestBroadcast(t *testing.T) {
	f := New(mustDefault(t, 4))
	last, arrivals := f.Broadcast(0, 1, Control)
	if len(arrivals) != 4 {
		t.Fatalf("arrivals %v", arrivals)
	}
	if arrivals[1] != 0 {
		t.Error("source should receive its own broadcast instantly")
	}
	for s, a := range arrivals {
		if s != 1 && a == 0 {
			t.Errorf("socket %d got broadcast at time 0", s)
		}
		if a > last {
			t.Error("last is not the max arrival")
		}
	}
	if f.Stats().ControlMsgs != 3 {
		t.Errorf("broadcast should send 3 messages, sent %d", f.Stats().ControlMsgs)
	}
}

func TestResetStats(t *testing.T) {
	f := New(mustDefault(t, 4))
	f.Send(0, 0, 1, Data)
	f.ResetStats()
	if f.Stats() != (Stats{}) {
		t.Errorf("stats not cleared")
	}
	if got := f.Send(0, 0, 1, Data); got > 125 {
		t.Errorf("link occupancy survived reset: %v", got)
	}
}

func TestLinkStats(t *testing.T) {
	f := New(mustDefault(t, 2))
	f.Send(0, 0, 1, Data)
	ls := f.LinkStats()
	if len(ls) != 2 {
		t.Fatalf("2-socket p2p should have 2 directed links, got %d", len(ls))
	}
	var used int
	for _, l := range ls {
		if l.Transfers > 0 {
			used++
		}
	}
	if used != 1 {
		t.Errorf("exactly one link should have traffic, got %d", used)
	}
}

func TestSendOutOfRangePanics(t *testing.T) {
	f := New(mustDefault(t, 2))
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	f.Send(0, 0, 5, Control)
}

// Property: hop count is symmetric and bounded by N/2 on a ring.
func TestHopsSymmetryProperty(t *testing.T) {
	f := New(mustDefault(t, 4))
	fn := func(a, b uint8) bool {
		from, to := int(a%4), int(b%4)
		h := f.Hops(from, to)
		return h == f.Hops(to, from) && h <= 2 && (h == 0) == (from == to)
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: a message never arrives before (hops * hopLatency) after issue,
// and traffic bytes equal hops * class size.
func TestSendLatencyLowerBoundProperty(t *testing.T) {
	fn := func(a, b uint8, dataMsg bool) bool {
		f := New(mustDefault(t, 4))
		from, to := int(a%4), int(b%4)
		class := Control
		if dataMsg {
			class = Data
		}
		arr := f.Send(1000, from, to, class)
		hops := f.Hops(from, to)
		minArrival := sim.Time(1000).Add(sim.Cycles(hops) * f.Config().HopLatency)
		if arr < minArrival {
			return false
		}
		return f.Stats().TotalBytes == uint64(hops*class.Bytes())
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestDiameter(t *testing.T) {
	cases := []struct {
		topo    Topology
		sockets int
		want    int
	}{
		{PointToPoint, 2, 1},
		{Ring, 8, 4},
		{Ring, 16, 8},
		{Mesh, 16, 6},
		{FullyConnected, 16, 1},
	}
	for _, c := range cases {
		if got := fabricFor(t, c.sockets, c.topo).Diameter(); got != c.want {
			t.Errorf("%s@%d Diameter = %d, want %d", c.topo, c.sockets, got, c.want)
		}
	}
}
