package interconnect

import (
	"testing"
	"testing/quick"

	"c3d/internal/sim"
)

func TestDefaultConfig(t *testing.T) {
	c2 := DefaultConfig(2)
	if c2.Topology != PointToPoint || c2.Sockets != 2 {
		t.Errorf("2-socket default %+v", c2)
	}
	c4 := DefaultConfig(4)
	if c4.Topology != Ring || c4.Sockets != 4 {
		t.Errorf("4-socket default %+v", c4)
	}
	if c4.HopLatency != 60 {
		t.Errorf("20ns hop should be 60 cycles, got %v", c4.HopLatency)
	}
}

func TestMessageClassBytes(t *testing.T) {
	if Control.Bytes() != 16 || Data.Bytes() != 80 {
		t.Errorf("packet sizes %d/%d", Control.Bytes(), Data.Bytes())
	}
	if Control.String() != "control" || Data.String() != "data" {
		t.Error("stringers")
	}
	if PointToPoint.String() != "p2p" || Ring.String() != "ring" {
		t.Error("topology stringers")
	}
}

func TestInvalidClassPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	MessageClass(42).Bytes()
}

func TestNewPanicsOnBadSocketCount(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	New(Config{Sockets: 0, Topology: Ring})
}

func TestHopsP2P(t *testing.T) {
	f := New(DefaultConfig(2))
	if f.Hops(0, 0) != 0 || f.Hops(0, 1) != 1 || f.Hops(1, 0) != 1 {
		t.Error("p2p hop counts wrong")
	}
}

func TestHopsRing4(t *testing.T) {
	f := New(DefaultConfig(4))
	cases := []struct{ from, to, want int }{
		{0, 0, 0}, {0, 1, 1}, {0, 2, 2}, {0, 3, 1},
		{1, 3, 2}, {2, 0, 2}, {3, 0, 1}, {3, 1, 2},
	}
	for _, c := range cases {
		if got := f.Hops(c.from, c.to); got != c.want {
			t.Errorf("Hops(%d,%d) = %d, want %d", c.from, c.to, got, c.want)
		}
	}
}

func TestSendLocalIsFree(t *testing.T) {
	f := New(DefaultConfig(4))
	if got := f.Send(100, 2, 2, Data); got != 100 {
		t.Errorf("local send took time: %v", got)
	}
	if f.Stats().Messages != 0 {
		t.Error("local send should not count as traffic")
	}
}

func TestSendOneHopLatency(t *testing.T) {
	f := New(DefaultConfig(2))
	got := f.Send(0, 0, 1, Control)
	// 16 bytes at 25.6GB/s (~8.5 B/cyc) is ~2 cycles plus 60 cycles hop.
	if got < 60 || got > 65 {
		t.Errorf("one-hop control latency = %v, want ~62", got)
	}
	st := f.Stats()
	if st.Messages != 1 || st.ControlMsgs != 1 || st.ControlBytes != 16 || st.HopsTraversed != 1 {
		t.Errorf("stats %+v", st)
	}
}

func TestSendTwoHopRing(t *testing.T) {
	f := New(DefaultConfig(4))
	one := f.Send(0, 0, 1, Data)
	two := f.Send(0, 0, 2, Data)
	if two <= one {
		t.Errorf("2-hop message should take longer than 1-hop: %v vs %v", two, one)
	}
	// Two hops of 60 cycles each plus transfer times and queueing behind
	// the first message on the shared 0->1 link.
	if two < 120 || two > 155 {
		t.Errorf("two-hop data latency = %v, want ~120-150", two)
	}
}

func TestTrafficBytesAccountPerHop(t *testing.T) {
	f := New(DefaultConfig(4))
	f.Send(0, 0, 2, Data) // 2 hops x 80 bytes
	if got := f.Stats().TotalBytes; got != 160 {
		t.Errorf("total bytes = %d, want 160", got)
	}
	if got := f.Stats().DataBytes; got != 160 {
		t.Errorf("data bytes = %d, want 160", got)
	}
}

func TestZeroLatency(t *testing.T) {
	f := New(DefaultConfig(4))
	f.SetZeroLatency()
	got := f.Send(0, 0, 2, Control)
	// Only transfer occupancy remains (a few cycles).
	if got > 10 {
		t.Errorf("zero-latency send took %v", got)
	}
	if f.Stats().TotalBytes == 0 {
		t.Error("zero latency must still account traffic")
	}
}

func TestInfiniteBandwidthStillHasLatency(t *testing.T) {
	f := New(DefaultConfig(2))
	f.SetInfiniteBandwidth()
	got := f.Send(0, 0, 1, Data)
	if got != 60 {
		t.Errorf("inf-bw one-hop latency = %v, want exactly 60", got)
	}
}

func TestLinkContention(t *testing.T) {
	f := New(DefaultConfig(2))
	// Saturate the 0->1 link with many data messages issued at time 0.
	var last sim.Time
	for i := 0; i < 200; i++ {
		last = f.Send(0, 0, 1, Data)
	}
	single := New(DefaultConfig(2)).Send(0, 0, 1, Data)
	if last < single*3 {
		t.Errorf("no contention visible: last=%v single=%v", last, single)
	}
}

func TestRoundTrip(t *testing.T) {
	f := New(DefaultConfig(2))
	done := f.RoundTrip(0, 0, 1, Data)
	// Roughly two hop latencies plus transfer times.
	if done < 120 || done > 145 {
		t.Errorf("round trip = %v, want ~130", done)
	}
	st := f.Stats()
	if st.Messages != 2 || st.ControlMsgs != 1 || st.DataMsgs != 1 {
		t.Errorf("stats %+v", st)
	}
}

func TestBroadcast(t *testing.T) {
	f := New(DefaultConfig(4))
	last, arrivals := f.Broadcast(0, 1, Control)
	if len(arrivals) != 4 {
		t.Fatalf("arrivals %v", arrivals)
	}
	if arrivals[1] != 0 {
		t.Error("source should receive its own broadcast instantly")
	}
	for s, a := range arrivals {
		if s != 1 && a == 0 {
			t.Errorf("socket %d got broadcast at time 0", s)
		}
		if a > last {
			t.Error("last is not the max arrival")
		}
	}
	if f.Stats().ControlMsgs != 3 {
		t.Errorf("broadcast should send 3 messages, sent %d", f.Stats().ControlMsgs)
	}
}

func TestResetStats(t *testing.T) {
	f := New(DefaultConfig(4))
	f.Send(0, 0, 1, Data)
	f.ResetStats()
	if f.Stats() != (Stats{}) {
		t.Errorf("stats not cleared")
	}
	if got := f.Send(0, 0, 1, Data); got > 125 {
		t.Errorf("link occupancy survived reset: %v", got)
	}
}

func TestLinkStats(t *testing.T) {
	f := New(DefaultConfig(2))
	f.Send(0, 0, 1, Data)
	ls := f.LinkStats()
	if len(ls) != 2 {
		t.Fatalf("2-socket p2p should have 2 directed links, got %d", len(ls))
	}
	var used int
	for _, l := range ls {
		if l.Transfers > 0 {
			used++
		}
	}
	if used != 1 {
		t.Errorf("exactly one link should have traffic, got %d", used)
	}
}

func TestSendOutOfRangePanics(t *testing.T) {
	f := New(DefaultConfig(2))
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	f.Send(0, 0, 5, Control)
}

// Property: hop count is symmetric and bounded by N/2 on a ring.
func TestHopsSymmetryProperty(t *testing.T) {
	f := New(DefaultConfig(4))
	fn := func(a, b uint8) bool {
		from, to := int(a%4), int(b%4)
		h := f.Hops(from, to)
		return h == f.Hops(to, from) && h <= 2 && (h == 0) == (from == to)
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: a message never arrives before (hops * hopLatency) after issue,
// and traffic bytes equal hops * class size.
func TestSendLatencyLowerBoundProperty(t *testing.T) {
	fn := func(a, b uint8, dataMsg bool) bool {
		f := New(DefaultConfig(4))
		from, to := int(a%4), int(b%4)
		class := Control
		if dataMsg {
			class = Data
		}
		arr := f.Send(1000, from, to, class)
		hops := f.Hops(from, to)
		minArrival := sim.Time(1000).Add(sim.Cycles(hops) * f.Config().HopLatency)
		if arr < minArrival {
			return false
		}
		return f.Stats().TotalBytes == uint64(hops*class.Bytes())
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
