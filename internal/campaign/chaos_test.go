package campaign

import (
	"bytes"
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"runtime"
	"testing"
	"time"

	"c3d/internal/faultify"
	"c3d/internal/server"
	"c3d/pkg/c3d/api"
)

// chaosWorkers starts n real worker daemons behind the deterministic
// fault-injecting middleware — the in-process equivalent of `c3dd -chaos`.
func chaosWorkers(t *testing.T, n int, plan string, seed uint64) []string {
	t.Helper()
	p, err := faultify.Lookup(plan)
	if err != nil {
		t.Fatal(err)
	}
	urls := make([]string, n)
	for i := range urls {
		s := server.New(server.Config{MaxConcurrent: 2})
		in := faultify.NewInjector(p, seed+uint64(i))
		ts := httptest.NewServer(in.Middleware(s.Handler()))
		t.Cleanup(func() { ts.Close(); s.Close() })
		urls[i] = ts.URL
	}
	return urls
}

// hangingWorker is a real worker whose every request (bar the capabilities
// handshake) hangs until the client gives up — a daemon that wedged.
func hangingWorker(t *testing.T) string {
	t.Helper()
	s := server.New(server.Config{MaxConcurrent: 2})
	in := faultify.NewInjector(faultify.Plan{Name: "always-hang", Hang: 1}, 1)
	ts := httptest.NewServer(in.Middleware(s.Handler()))
	t.Cleanup(func() { ts.Close(); s.Close() })
	return ts.URL
}

// TestChaosCampaignByteIdentical is the fault-injection determinism gate: a
// campaign run over a fleet with seeded connection resets, 5xxs and delays
// must still assemble results byte-identical to a fault-free direct run —
// faults cost retries, never correctness.
func TestChaosCampaignByteIdentical(t *testing.T) {
	spec := testCampaign(4)
	want := referenceResults(t, spec.Jobs)

	_, cl := newCoordinator(t, Config{
		Workers:         chaosWorkers(t, 2, "flaky", 7),
		MaxAttempts:     10,
		Cooldown:        20 * time.Millisecond,
		DispatchTimeout: 10 * time.Second,
		ClientOptions: []api.ClientOption{
			api.WithRetries(4),
			api.WithBackoff(10 * time.Millisecond),
			api.WithBackoffCap(80 * time.Millisecond),
		},
	})
	_, res := runCampaign(t, cl, spec)
	for i, doc := range res.Results {
		if !bytes.Equal(doc, want[i]) {
			t.Errorf("chaos result %d differs from fault-free run:\n got %s\nwant %s", i, doc, want[i])
		}
	}
}

// TestDispatchDeadlineBenchesHungWorker checks the per-job dispatch deadline:
// a wedged worker trips DispatchTimeout, gets benched, and its job is
// reassigned to a healthy worker — the campaign completes correctly instead
// of hanging forever.
func TestDispatchDeadlineBenchesHungWorker(t *testing.T) {
	spec := testCampaign(2)
	want := referenceResults(t, spec.Jobs)
	healthy := startWorkers(t, 1)[0]

	_, cl := newCoordinator(t, Config{
		Workers:         []string{hangingWorker(t), healthy},
		Policy:          "round-robin",
		MaxAttempts:     4,
		Cooldown:        50 * time.Millisecond,
		DispatchTimeout: 300 * time.Millisecond,
		ClientOptions:   []api.ClientOption{api.WithRetries(0)},
	})
	st, res := runCampaign(t, cl, spec)
	reassigned := 0
	for _, j := range st.Jobs {
		if j.Worker != healthy {
			t.Errorf("job %d credited to %s, want the healthy worker", j.Index, j.Worker)
		}
		if j.Attempts > 1 {
			reassigned++
		}
	}
	if reassigned == 0 {
		t.Error("no job recorded a deadline-driven reassignment (attempts > 1)")
	}
	for i, doc := range res.Results {
		if !bytes.Equal(doc, want[i]) {
			t.Errorf("job %d result differs after deadline reassignment", i)
		}
	}
}

// TestHedgedDispatchRescuesStraggler checks hedging: with no dispatch
// deadline at all, a straggling primary is raced by a speculative second
// dispatch after HedgeAfter, and the first result wins.
func TestHedgedDispatchRescuesStraggler(t *testing.T) {
	spec := testCampaign(1)
	want := referenceResults(t, spec.Jobs)
	healthy := startWorkers(t, 1)[0]

	_, cl := newCoordinator(t, Config{
		Workers:       []string{hangingWorker(t), healthy},
		Policy:        "round-robin",
		Cooldown:      50 * time.Millisecond,
		HedgeAfter:    200 * time.Millisecond,
		ClientOptions: []api.ClientOption{api.WithRetries(0)},
	})
	st, res := runCampaign(t, cl, spec)
	j := st.Jobs[0]
	if j.Hedges < 1 {
		t.Errorf("job recorded %d hedges, want >= 1", j.Hedges)
	}
	if j.Worker != healthy {
		t.Errorf("job credited to %s, want the hedge winner", j.Worker)
	}
	if !bytes.Equal(res.Results[0], want[0]) {
		t.Error("hedged result differs from direct run")
	}
}

// TestCloseMidCampaignReleasesEverything is the shutdown-hygiene gate:
// hard-closing a coordinator mid-campaign must settle every job into a
// terminal state and leak no goroutines — dispatch loops, hedges and waiting
// pickers all unwind.
func TestCloseMidCampaignReleasesEverything(t *testing.T) {
	workers := startWorkers(t, 2)
	before := runtime.NumGoroutine()

	co, err := New(t.Context(), Config{
		Workers: workers,
		ClientOptions: []api.ClientOption{
			// Keep-alive connections park goroutines in the background; turn
			// them off so the leak check measures ours, not the pool's.
			api.WithHTTPClient(&http.Client{Transport: &http.Transport{DisableKeepAlives: true}}),
			api.WithRetries(0),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	spec := testCampaign(4)
	for i := range spec.Jobs {
		spec.Jobs[i].Params.Accesses = 20000 // slow enough to be mid-flight at Close
	}
	resp, err := co.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for inFlight := false; !inFlight; {
		st, err := co.Status(resp.ID)
		if err != nil {
			t.Fatal(err)
		}
		for _, j := range st.Jobs {
			if j.State == api.StateRunning {
				inFlight = true
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("campaign never got a job in flight")
		}
		if !inFlight {
			time.Sleep(5 * time.Millisecond)
		}
	}

	co.Close()

	st, err := co.Status(resp.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !api.Terminal(st.State) {
		t.Errorf("campaign still %s after Close", st.State)
	}
	for _, j := range st.Jobs {
		if !api.Terminal(j.State) {
			t.Errorf("job %d still %s after Close", j.Index, j.State)
		}
	}

	// Everything Close spawned must unwind; give cancelled dispatches a
	// moment to observe their contexts.
	leakDeadline := time.Now().Add(10 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before+2 {
			return
		}
		if time.Now().After(leakDeadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutines: %d before, %d after Close\n%s",
				before, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestDrainingCoordinatorRejectsNewCampaigns checks drain semantics at the
// coordinator: after Drain begins, health reports "draining" and new
// campaigns answer shutting_down, while an admitted campaign still finishes.
func TestDrainingCoordinatorRejectsNewCampaigns(t *testing.T) {
	co, cl := newCoordinator(t, Config{Workers: startWorkers(t, 1)})
	cl = api.NewClient(cl.BaseURL(), api.WithRetries(0))

	resp, err := cl.SubmitCampaign(t.Context(), testCampaign(2))
	if err != nil {
		t.Fatal(err)
	}
	drainCtx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := co.Drain(drainCtx); err != nil {
		t.Fatalf("drain: %v", err)
	}

	if h := co.Health(); h.Status != "draining" {
		t.Errorf("health status after drain = %q, want draining", h.Status)
	}
	st, err := cl.CampaignStatus(t.Context(), resp.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != api.StateDone {
		t.Errorf("draining coordinator finished the campaign %s: %s", st.State, st.Error)
	}
	_, err = cl.SubmitCampaign(t.Context(), testCampaign(1))
	var apiErr *api.Error
	if !errors.As(err, &apiErr) || apiErr.Code != api.CodeShuttingDown {
		t.Errorf("submit during drain: %v, want shutting_down", err)
	}
}
