package campaign

import (
	"bytes"
	"os"
	"testing"
	"time"

	"c3d/pkg/c3d/api"
)

// journaledCampaign builds a campaign whose first job is quick and whose
// remaining jobs are slow enough that a crash injected after the first
// completion reliably lands mid-campaign.
func journaledCampaign() api.CampaignSpec {
	spec := api.CampaignSpec{Jobs: []api.JobSpec{simSpec(1)}}
	for i := 2; i <= 4; i++ {
		js := simSpec(int64(i))
		js.Params.Accesses = 4000
		spec.Jobs = append(spec.Jobs, js)
	}
	return spec
}

// doneRecorded reads the journal and returns the set of job indexes with a
// done record for the campaign — the jobs whose results were durable at that
// moment.
func doneRecorded(t *testing.T, dir, campaignID string) map[int]bool {
	t.Helper()
	recs, err := readJournal(journalPath(dir))
	if err != nil {
		t.Fatalf("reading journal: %v", err)
	}
	done := map[int]bool{}
	for _, rec := range recs {
		if rec.Type == recJob && rec.ID == campaignID && rec.State == api.StateDone {
			done[rec.Index] = true
		}
	}
	return done
}

// TestJournalCrashResume is the crash-recovery gate: a coordinator killed
// mid-campaign and restarted over the same journal directory must finish the
// campaign with results byte-identical to an uninterrupted run — and must
// not re-dispatch any job whose result was already journaled, which the
// resumed status proves by showing those jobs as zero-attempt cache hits.
func TestJournalCrashResume(t *testing.T) {
	spec := journaledCampaign()
	want := referenceResults(t, spec.Jobs)
	dir := t.TempDir()
	workers := startWorkers(t, 2)

	// First life: run the campaign serially and hard-stop once at least one
	// job has completed. The stop cancels in-flight work but deliberately
	// leaves the campaign non-terminal in the journal.
	co1, cl1 := newCoordinator(t, Config{Workers: workers, JournalDir: dir, MaxConcurrent: 1})
	resp, err := cl1.SubmitCampaign(t.Context(), spec)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(60 * time.Second)
	for {
		st, err := cl1.CampaignStatus(t.Context(), resp.ID)
		if err != nil {
			t.Fatal(err)
		}
		if st.Done >= 1 || api.Terminal(st.State) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no job completed before the injected crash")
		}
		time.Sleep(5 * time.Millisecond)
	}
	co1.Close()
	durable := doneRecorded(t, dir, resp.ID)
	if len(durable) == 0 {
		t.Fatal("no job completion was journaled before the crash")
	}

	// Second life: a fresh coordinator over the same journal replays and
	// resumes the campaign on its own.
	_, cl2 := newCoordinator(t, Config{Workers: workers, JournalDir: dir, MaxConcurrent: 1})
	st, err := cl2.WaitCampaign(t.Context(), resp.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != api.StateDone {
		t.Fatalf("resumed campaign finished %s: %s (%+v)", st.State, st.Error, st.Jobs)
	}
	for idx := range durable {
		j := st.Jobs[idx]
		if !j.CacheHit || j.Attempts != 0 || j.Worker != "" {
			t.Errorf("job %d was journaled done before the crash but was re-run: %+v", idx, j)
		}
	}
	res, err := cl2.CampaignResults(t.Context(), resp.ID)
	if err != nil {
		t.Fatal(err)
	}
	for i, doc := range res.Results {
		if !bytes.Equal(doc, want[i]) {
			t.Errorf("resumed result %d differs from uninterrupted run:\n got %s\nwant %s", i, doc, want[i])
		}
	}

	// New admissions continue the journaled ID sequence instead of colliding.
	resp2, err := cl2.SubmitCampaign(t.Context(), api.CampaignSpec{Jobs: []api.JobSpec{simSpec(1)}})
	if err != nil {
		t.Fatal(err)
	}
	if resp2.ID == resp.ID {
		t.Errorf("post-restart campaign reused id %s", resp2.ID)
	}
}

// TestJournalRestartRestoresFinishedCampaign checks the quiet path: a
// campaign that finished before a graceful shutdown comes back after restart
// as a terminal record with its results intact, served from the disk cache
// without touching the fleet.
func TestJournalRestartRestoresFinishedCampaign(t *testing.T) {
	dir := t.TempDir()
	workers := startWorkers(t, 1)
	spec := testCampaign(2)

	co1, cl1 := newCoordinator(t, Config{Workers: workers, JournalDir: dir})
	_, cold := runCampaign(t, cl1, spec)
	co1.Close()

	_, cl2 := newCoordinator(t, Config{Workers: workers, JournalDir: dir})
	st, err := cl2.CampaignStatus(t.Context(), "campaign-000001")
	if err != nil {
		t.Fatal(err)
	}
	if st.State != api.StateDone || st.CacheHits != len(spec.Jobs) {
		t.Fatalf("restored campaign = %+v, want done with every job a cache hit", st)
	}
	res, err := cl2.CampaignResults(t.Context(), "campaign-000001")
	if err != nil {
		t.Fatal(err)
	}
	for i := range cold.Results {
		if !bytes.Equal(cold.Results[i], res.Results[i]) {
			t.Errorf("restored result %d differs from the pre-restart bytes", i)
		}
	}
	if resp, err := cl2.SubmitCampaign(t.Context(), spec); err != nil || resp.ID != "campaign-000002" {
		t.Errorf("post-restart admission = %+v, %v; want campaign-000002", resp, err)
	}
}

// TestJournalTornTailTolerated pins crash semantics at the file level: a
// journal whose final line was torn by a crash replays every record before
// the tear instead of failing.
func TestJournalTornTailTolerated(t *testing.T) {
	dir := t.TempDir()
	content := `{"type":"campaign","id":"campaign-000001","spec":{"jobs":[{"kind":"simulate","params":{},"verify":{}}]}}` + "\n" +
		`{"type":"job","id":"campaign-000001","ind`
	if err := os.WriteFile(journalPath(dir), []byte(content), 0o666); err != nil {
		t.Fatal(err)
	}
	recs, err := readJournal(journalPath(dir))
	if err != nil {
		t.Fatalf("torn journal failed to read: %v", err)
	}
	if len(recs) != 1 || recs[0].Type != recCampaign || recs[0].ID != "campaign-000001" {
		t.Errorf("torn journal replayed %+v, want the one intact campaign record", recs)
	}
}

// TestReplayJournalFolding covers the record-folding rules: terminal states
// stick, job records accumulate, duplicate admissions are ignored, and the
// ID sequence resumes past the highest journaled campaign.
func TestReplayJournalFolding(t *testing.T) {
	spec := &api.CampaignSpec{Jobs: []api.JobSpec{simSpec(1), simSpec(2)}}
	states, maxSeq := replayJournal([]journalRecord{
		{Type: recCampaign, ID: "campaign-000002", Spec: spec},
		{Type: recJob, ID: "campaign-000002", Index: 1, Key: "k1", State: api.StateDone},
		{Type: recCampaign, ID: "campaign-000002", Spec: spec}, // duplicate: ignored
		{Type: recCampaign, ID: "campaign-000007", Spec: spec},
		{Type: recCampaignState, ID: "campaign-000007", State: api.StateFailed, Error: "boom"},
		{Type: recStop},
	})
	if maxSeq != 7 {
		t.Errorf("maxSeq = %d, want 7", maxSeq)
	}
	if len(states) != 2 {
		t.Fatalf("replayed %d campaigns, want 2", len(states))
	}
	if states[0].state != "" || states[0].jobsDone[1] != "k1" || len(states[0].jobsDone) != 1 {
		t.Errorf("interrupted campaign folded to %+v, want non-terminal with job 1 done", states[0])
	}
	if states[1].state != api.StateFailed || states[1].errMsg != "boom" {
		t.Errorf("failed campaign folded to %+v", states[1])
	}
}

// TestDiskCacheRoundTrip checks the disk tier: a put lands on disk, a fresh
// cache over the same directory serves it as a hit, and hostile keys never
// touch the filesystem.
func TestDiskCacheRoundTrip(t *testing.T) {
	dir := t.TempDir()
	key, err := CacheKey(simSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	c1 := newResultCache(4, dir, nil)
	c1.put(key, []byte(`{"ok":true}`))

	c2 := newResultCache(4, dir, nil)
	if !c2.has(key) {
		t.Fatal("fresh cache over the same dir does not see the persisted entry")
	}
	if data, ok := c2.get(key); !ok || string(data) != `{"ok":true}` {
		t.Errorf("disk hit = %q, %v", data, ok)
	}
	if st := c2.stats(); st.Hits != 1 || st.Misses != 0 {
		t.Errorf("disk hit miscounted: %+v", st)
	}
	for _, bad := range []string{"../../etc/passwd", "short", ""} {
		if c2.has(bad) {
			t.Errorf("hostile key %q resolved from disk", bad)
		}
		c2.put(bad, []byte("x")) // must not create a file outside dir
	}
}
