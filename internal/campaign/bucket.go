package campaign

import (
	"sync"
	"time"
)

// tokenBucket is the coordinator's admission throttle: a classic token
// bucket holding at most burst tokens, refilled at rate tokens per second.
// A campaign submission must take one token per job, atomically — either
// the whole campaign is admitted or none of it is, so a rejected campaign
// never half-enqueues.
//
// take is non-blocking by design: overload is answered immediately with
// HTTP 429 and the rate_limited code, letting clients back off instead of
// parking connections on a loaded coordinator.
type tokenBucket struct {
	mu     sync.Mutex
	rate   float64 // tokens per second
	burst  float64 // bucket capacity
	tokens float64
	last   time.Time
	now    func() time.Time // injectable for tests
}

// newTokenBucket builds a bucket starting full. rate must be > 0; burst
// values below 1 are raised to 1 so a single job can always eventually pass.
func newTokenBucket(rate float64, burst int) *tokenBucket {
	b := float64(burst)
	if b < 1 {
		b = 1
	}
	return &tokenBucket{rate: rate, burst: b, tokens: b, now: time.Now}
}

// take removes n tokens if available and reports whether it did.
func (t *tokenBucket) take(n int) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	now := t.now()
	if !t.last.IsZero() {
		t.tokens += now.Sub(t.last).Seconds() * t.rate
		if t.tokens > t.burst {
			t.tokens = t.burst
		}
	}
	t.last = now
	if float64(n) > t.tokens {
		return false
	}
	t.tokens -= float64(n)
	return true
}
