package campaign

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"c3d/internal/server"
	"c3d/pkg/c3d"
	"c3d/pkg/c3d/api"
)

// startWorkers brings up n real worker daemons (the same internal/server the
// production c3dd runs) over HTTP and returns their base URLs.
func startWorkers(t *testing.T, n int) []string {
	t.Helper()
	urls := make([]string, n)
	for i := range urls {
		s := server.New(server.Config{MaxConcurrent: 2})
		ts := httptest.NewServer(s.Handler())
		t.Cleanup(func() { ts.Close(); s.Close() })
		urls[i] = ts.URL
	}
	return urls
}

// newCoordinator builds a coordinator over the given workers and returns an
// api.Client speaking to its HTTP handler — campaigns flow through the real
// wire, exactly as c3dexp -remote drives them.
func newCoordinator(t *testing.T, cfg Config) (*Coordinator, *api.Client) {
	t.Helper()
	co, err := New(t.Context(), cfg)
	if err != nil {
		t.Fatalf("coordinator: %v", err)
	}
	ts := httptest.NewServer(co.Handler())
	t.Cleanup(ts.Close)
	return co, api.NewClient(ts.URL)
}

// simSpec is a sub-second simulate job; distinct seeds make distinct jobs
// (and distinct cache keys).
func simSpec(seed int64) api.JobSpec {
	return api.JobSpec{
		Kind:     api.KindSimulate,
		Workload: "streamcluster",
		Params:   api.Params{Threads: 4, Scale: 512, Accesses: 500, Seed: seed},
	}
}

func testCampaign(n int) api.CampaignSpec {
	var spec api.CampaignSpec
	for i := 0; i < n; i++ {
		spec.Jobs = append(spec.Jobs, simSpec(int64(i+1)))
	}
	return spec
}

// referenceResults runs each spec directly on a standalone worker — no
// coordinator involved — and returns the result documents. This is the
// byte-identity baseline every distributed configuration must reproduce.
func referenceResults(t *testing.T, specs []api.JobSpec) [][]byte {
	t.Helper()
	cl := api.NewClient(startWorkers(t, 1)[0])
	out := make([][]byte, len(specs))
	for i, spec := range specs {
		resp, err := cl.Submit(t.Context(), spec)
		if err != nil {
			t.Fatalf("reference submit: %v", err)
		}
		if _, err := cl.Wait(t.Context(), resp.ID); err != nil {
			t.Fatal(err)
		}
		raw, err := cl.Result(t.Context(), resp.ID)
		if err != nil {
			t.Fatalf("reference result: %v", err)
		}
		// The campaign wire carries JSON value bytes; a result endpoint's
		// trailing newline is presentation, not content.
		out[i] = bytes.TrimSpace(raw)
	}
	return out
}

func runCampaign(t *testing.T, cl *api.Client, spec api.CampaignSpec) (*api.CampaignStatus, *api.CampaignResults) {
	t.Helper()
	resp, err := cl.SubmitCampaign(t.Context(), spec)
	if err != nil {
		t.Fatalf("submit campaign: %v", err)
	}
	st, err := cl.WaitCampaign(t.Context(), resp.ID)
	if err != nil {
		t.Fatalf("wait campaign: %v", err)
	}
	if st.State != api.StateDone {
		t.Fatalf("campaign %s finished %s: %s (%+v)", st.ID, st.State, st.Error, st.Jobs)
	}
	res, err := cl.CampaignResults(t.Context(), resp.ID)
	if err != nil {
		t.Fatalf("campaign results: %v", err)
	}
	return st, res
}

// TestAssemblyByteIdenticalAcrossFleets is the distribution-invisibility
// gate: the same campaign, run through every registered routing policy at
// worker counts 1, 2 and 4, must assemble result documents byte-identical to
// running each job directly on a single worker.
func TestAssemblyByteIdenticalAcrossFleets(t *testing.T) {
	spec := testCampaign(4)
	want := referenceResults(t, spec.Jobs)
	workers := startWorkers(t, 4)

	for _, policy := range Policies() {
		for _, n := range []int{1, 2, 4} {
			t.Run(fmt.Sprintf("%s-%dw", policy, n), func(t *testing.T) {
				_, cl := newCoordinator(t, Config{Workers: workers[:n], Policy: policy})
				st, res := runCampaign(t, cl, spec)
				if st.CacheHits != 0 {
					t.Errorf("cold campaign reported %d cache hits", st.CacheHits)
				}
				if len(res.Results) != len(want) {
					t.Fatalf("got %d results, want %d", len(res.Results), len(want))
				}
				for i, doc := range res.Results {
					if !bytes.Equal(doc, want[i]) {
						t.Errorf("job %d result differs from direct run:\n got %s\nwant %s", i, doc, want[i])
					}
				}
			})
		}
	}
}

// TestRoundRobinSpreadsJobs checks routing actually distributes: with two
// workers and four jobs, round-robin must assign work to both.
func TestRoundRobinSpreadsJobs(t *testing.T) {
	co, cl := newCoordinator(t, Config{Workers: startWorkers(t, 2), Policy: "round-robin"})
	st, _ := runCampaign(t, cl, testCampaign(4))
	used := map[string]int{}
	for _, j := range st.Jobs {
		used[j.Worker]++
	}
	if len(used) != 2 {
		t.Errorf("round-robin used %d workers, want 2: %v", len(used), used)
	}
	h := co.Health()
	var assigned int64
	for _, w := range h.Workers {
		assigned += w.Assigned
		if w.Inflight != 0 {
			t.Errorf("worker %s still reports %d in-flight after completion", w.URL, w.Inflight)
		}
	}
	if assigned != 4 {
		t.Errorf("fleet assigned %d jobs total, want 4", assigned)
	}
}

// TestRepeatCampaignServedFromCache is the content-addressed cache gate: a
// repeated campaign must be answered entirely from cache — no dispatch, hit
// counters up — with bytes cmp-equal to the cold run.
func TestRepeatCampaignServedFromCache(t *testing.T) {
	co, cl := newCoordinator(t, Config{Workers: startWorkers(t, 2)})
	spec := testCampaign(3)

	_, cold := runCampaign(t, cl, spec)
	st, warm := runCampaign(t, cl, spec)

	if st.CacheHits != len(spec.Jobs) {
		t.Errorf("repeat campaign: %d cache hits, want %d", st.CacheHits, len(spec.Jobs))
	}
	for _, j := range st.Jobs {
		if !j.CacheHit || j.Attempts != 0 || j.Worker != "" {
			t.Errorf("repeat job %d should be a pure cache hit: %+v", j.Index, j)
		}
	}
	for i := range cold.Results {
		if !bytes.Equal(cold.Results[i], warm.Results[i]) {
			t.Errorf("cached result %d differs from cold run", i)
		}
	}
	stats := co.Health().Cache
	if stats == nil || stats.Hits != int64(len(spec.Jobs)) || stats.Entries != len(spec.Jobs) {
		t.Errorf("cache stats after repeat = %+v, want %d hits over %d entries", stats, len(spec.Jobs), len(spec.Jobs))
	}

	// A different seed is a different content address: no false hits.
	st2, _ := runCampaign(t, cl, testCampaign(4)) // jobs 1-3 cached, job 4 new
	if st2.CacheHits != 3 {
		t.Errorf("extended campaign: %d cache hits, want 3", st2.CacheHits)
	}
}

// dyingWorker mimics a daemon that accepts a job and then crashes: the
// capabilities handshake and submission succeed, every later request has its
// connection severed. deaths counts severed requests.
func dyingWorker(t *testing.T, deaths *atomic.Int64) string {
	t.Helper()
	mux := http.NewServeMux()
	caps := c3d.CurrentCapabilities()
	serve := func(v any) http.HandlerFunc {
		return func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			enc.Encode(v)
		}
	}
	mux.HandleFunc("GET /v1/capabilities", serve(caps))
	mux.HandleFunc("GET /healthz", serve(api.Health{Status: "ok", Version: caps.Version}))
	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusAccepted)
		json.NewEncoder(w).Encode(api.SubmitResponse{ID: "job-000001", State: api.StateQueued})
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		deaths.Add(1)
		panic(http.ErrAbortHandler) // sever the connection: the worker "died"
	})
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts.URL
}

// TestWorkerDiesMidJobReassigned is the fault-tolerance gate: a worker that
// accepts a job and then dies must get benched, and its job reassigned to a
// surviving worker, with campaign results still byte-identical to a direct
// run.
func TestWorkerDiesMidJobReassigned(t *testing.T) {
	spec := testCampaign(2)
	want := referenceResults(t, spec.Jobs)

	var deaths atomic.Int64
	healthyURL := startWorkers(t, 1)[0]
	_, cl := newCoordinator(t, Config{
		Workers:       []string{healthyURL, dyingWorker(t, &deaths)},
		Policy:        "round-robin",
		Cooldown:      50 * time.Millisecond,
		ClientOptions: []api.ClientOption{api.WithRetries(0)},
	})

	st, res := runCampaign(t, cl, spec)
	if deaths.Load() == 0 {
		t.Fatal("no job ever reached the dying worker; the test exercised nothing")
	}
	reassigned := 0
	for _, j := range st.Jobs {
		if j.State != api.StateDone {
			t.Errorf("job %d finished %s: %s", j.Index, j.State, j.Error)
		}
		if j.Worker != healthyURL {
			t.Errorf("job %d credited to %s, want the surviving worker", j.Index, j.Worker)
		}
		if j.Attempts > 1 {
			reassigned++
		}
	}
	if reassigned == 0 {
		t.Error("no job recorded a reassignment (attempts > 1)")
	}
	for i, doc := range res.Results {
		if !bytes.Equal(doc, want[i]) {
			t.Errorf("job %d result differs from direct run after reassignment", i)
		}
	}
}

// TestAllWorkersDeadFailsCampaign checks the bounded-retry path: with only a
// dying worker, attempts exhaust, the campaign fails, and the results
// endpoint answers with the job_failed envelope.
func TestAllWorkersDeadFailsCampaign(t *testing.T) {
	var deaths atomic.Int64
	_, cl := newCoordinator(t, Config{
		Workers:       []string{dyingWorker(t, &deaths)},
		MaxAttempts:   2,
		Cooldown:      10 * time.Millisecond,
		ClientOptions: []api.ClientOption{api.WithRetries(0)},
	})
	resp, err := cl.SubmitCampaign(t.Context(), testCampaign(1))
	if err != nil {
		t.Fatal(err)
	}
	st, err := cl.WaitCampaign(t.Context(), resp.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != api.StateFailed {
		t.Fatalf("campaign state %s, want failed", st.State)
	}
	if st.Jobs[0].Attempts != 2 {
		t.Errorf("job recorded %d attempts, want 2", st.Jobs[0].Attempts)
	}
	_, err = cl.CampaignResults(t.Context(), resp.ID)
	var apiErr *api.Error
	if !errors.As(err, &apiErr) || apiErr.Code != api.CodeJobFailed || apiErr.HTTPStatus != http.StatusUnprocessableEntity {
		t.Errorf("results of failed campaign: %v, want job_failed envelope with HTTP 422", err)
	}
}

// TestAdmissionRateLimit checks the token bucket at the coordinator door:
// a campaign larger than the remaining tokens is rejected whole with 429 and
// the rate_limited code; a campaign within budget is admitted.
func TestAdmissionRateLimit(t *testing.T) {
	_, cl := newCoordinator(t, Config{
		Workers:    startWorkers(t, 1),
		RatePerSec: 0.001, // effectively no refill within the test
		Burst:      2,
	})
	cl = api.NewClient(cl.BaseURL(), api.WithRetries(0))

	_, err := cl.SubmitCampaign(t.Context(), testCampaign(3))
	var apiErr *api.Error
	if !errors.As(err, &apiErr) || apiErr.Code != api.CodeRateLimited || apiErr.HTTPStatus != http.StatusTooManyRequests {
		t.Fatalf("oversized campaign: %v, want rate_limited envelope with HTTP 429", err)
	}

	if _, res := runCampaign(t, cl, testCampaign(2)); len(res.Results) != 2 {
		t.Fatal("in-budget campaign should have been admitted and completed")
	}

	// The bucket is drained now: even a single-job campaign bounces.
	_, err = cl.SubmitCampaign(t.Context(), testCampaign(1))
	if !errors.As(err, &apiErr) || apiErr.Code != api.CodeRateLimited {
		t.Errorf("post-drain campaign: %v, want rate_limited", err)
	}
}

// TestSubmitValidation checks campaign specs are validated against the
// fleet's capabilities at the door.
func TestSubmitValidation(t *testing.T) {
	_, cl := newCoordinator(t, Config{Workers: startWorkers(t, 1)})

	var apiErr *api.Error
	_, err := cl.SubmitCampaign(t.Context(), api.CampaignSpec{})
	if !errors.As(err, &apiErr) || apiErr.Code != api.CodeInvalidSpec {
		t.Errorf("empty campaign: %v, want invalid_spec", err)
	}

	bogus := api.CampaignSpec{Jobs: []api.JobSpec{{Kind: api.KindExperiment, Experiments: []string{"fig99"}}}}
	_, err = cl.SubmitCampaign(t.Context(), bogus)
	if !errors.As(err, &apiErr) || apiErr.Code != api.CodeInvalidSpec || apiErr.HTTPStatus != http.StatusBadRequest {
		t.Errorf("bogus experiment: %v, want invalid_spec envelope with HTTP 400", err)
	}

	_, err = cl.CampaignStatus(t.Context(), "campaign-999999")
	if !errors.As(err, &apiErr) || apiErr.Code != api.CodeNotFound || apiErr.HTTPStatus != http.StatusNotFound {
		t.Errorf("unknown campaign: %v, want not_found envelope with HTTP 404", err)
	}
}

// TestHeterogeneousFleetRejected checks the capabilities handshake: a fleet
// whose workers disagree on capabilities must be refused at construction.
func TestHeterogeneousFleetRejected(t *testing.T) {
	odd := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(api.Capabilities{Version: "other", Designs: []string{"c3d"}})
	}))
	t.Cleanup(odd.Close)
	_, err := New(t.Context(), Config{Workers: []string{startWorkers(t, 1)[0], odd.URL}})
	if err == nil {
		t.Fatal("heterogeneous fleet accepted")
	}
}

// TestCoordinatorListAndHealth covers the campaign list page and the
// liveness document's fleet view.
func TestCoordinatorListAndHealth(t *testing.T) {
	co, cl := newCoordinator(t, Config{Workers: startWorkers(t, 2)})
	runCampaign(t, cl, testCampaign(1))
	runCampaign(t, cl, testCampaign(2))

	page := co.List(0, 10)
	if page.Total != 2 || len(page.Campaigns) != 2 {
		t.Fatalf("list = total %d, %d campaigns; want 2/2", page.Total, len(page.Campaigns))
	}
	if page.Campaigns[0].Total != 1 || page.Campaigns[1].Total != 2 {
		t.Errorf("campaigns out of submission order: %+v", page.Campaigns)
	}
	one := co.List(1, 1)
	if one.Offset != 1 || len(one.Campaigns) != 1 || one.Campaigns[0].ID != page.Campaigns[1].ID {
		t.Errorf("page(1,1) = %+v", one)
	}

	h, err := cl.Health(t.Context())
	if err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || len(h.Workers) != 2 || h.Cache == nil || h.Finished != 2 {
		t.Errorf("coordinator health = %+v", h)
	}
}
