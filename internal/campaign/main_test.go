package campaign

import (
	"testing"

	"c3d/internal/leakcheck"
)

// TestMain fails the suite if any test leaks a module goroutine: dispatch
// and hedge goroutines, bench reapers, journal writers and probe loops must
// all be released by Coordinator.Close/Drain in every test, not just the
// dedicated close-mid-campaign one.
func TestMain(m *testing.M) { leakcheck.Main(m) }
