package campaign

import (
	"fmt"
	"testing"
	"time"

	"c3d/pkg/c3d/api"
)

func TestTokenBucket(t *testing.T) {
	clock := time.Unix(0, 0)
	b := newTokenBucket(10, 5) // 10/s, burst 5, starts full
	b.now = func() time.Time { return clock }

	if !b.take(5) {
		t.Fatal("full bucket refused its burst")
	}
	if b.take(1) {
		t.Fatal("empty bucket granted a token")
	}
	clock = clock.Add(300 * time.Millisecond) // +3 tokens
	if !b.take(3) {
		t.Fatal("refill not credited")
	}
	if b.take(1) {
		t.Fatal("over-refill: bucket granted more than elapsed time bought")
	}
	clock = clock.Add(time.Hour) // refill far beyond burst
	if b.take(6) {
		t.Fatal("bucket exceeded its burst capacity")
	}
	if !b.take(5) {
		t.Fatal("bucket should cap at burst, not below")
	}
}

func TestCacheKeyNormalisation(t *testing.T) {
	base := simSpec(7)
	k1, err := CacheKey(base)
	if err != nil {
		t.Fatal(err)
	}

	// Parallelism and streaming mode do not change result bytes, so they
	// must not change the content address.
	tuned := base
	tuned.Params.Parallelism = 8
	stream := true
	tuned.Params.Stream = &stream
	if k2, _ := CacheKey(tuned); k2 != k1 {
		t.Error("host-tuning fields changed the cache key")
	}

	// Everything result-affecting must change it.
	for name, mutate := range map[string]func(*api.JobSpec){
		"seed":     func(s *api.JobSpec) { s.Params.Seed = 8 },
		"accesses": func(s *api.JobSpec) { s.Params.Accesses = 501 },
		"kind":     func(s *api.JobSpec) { s.Kind = api.KindExperiment },
		"workload": func(s *api.JobSpec) { s.Workload = "canneal" },
		"design":   func(s *api.JobSpec) { s.Params.Design = "base" },
		"sampling": func(s *api.JobSpec) { s.Params.Sampling = "stretch=1400,warm=60,win=60" },
	} {
		other := base
		mutate(&other)
		if k2, _ := CacheKey(other); k2 == k1 {
			t.Errorf("changing %s did not change the cache key", name)
		}
	}
}

func TestResultCacheLRU(t *testing.T) {
	c := newResultCache(2, "", nil)
	c.put("a", []byte("A"))
	c.put("b", []byte("B"))
	if _, ok := c.get("a"); !ok { // a is now most recent
		t.Fatal("miss on fresh entry")
	}
	c.put("c", []byte("C")) // evicts b, the least recently used
	if _, ok := c.get("b"); ok {
		t.Error("LRU entry survived eviction")
	}
	if got, ok := c.get("a"); !ok || string(got) != "A" {
		t.Error("recently-used entry was evicted")
	}
	st := c.stats()
	if st.Entries != 2 || st.Hits != 2 || st.Misses != 1 {
		t.Errorf("stats = %+v, want 2 entries, 2 hits, 1 miss", st)
	}
}

func TestPolicyRegistry(t *testing.T) {
	names := Policies()
	if len(names) < 2 || names[0] != "round-robin" || names[1] != "least-loaded" {
		t.Fatalf("registered policies = %v", names)
	}
	if _, err := LookupPolicy("carrier-pigeon"); err == nil {
		t.Error("unknown policy looked up successfully")
	}
	spec, err := LookupPolicy(DefaultPolicy)
	if err != nil || spec.New() == nil {
		t.Fatalf("default policy unusable: %v", err)
	}
}

func views(indexes ...int) []WorkerView {
	out := make([]WorkerView, len(indexes))
	for i, idx := range indexes {
		out[i] = WorkerView{Index: idx, URL: fmt.Sprintf("w%d", idx), Healthy: true}
	}
	return out
}

func TestRoundRobinPolicy(t *testing.T) {
	p := (&roundRobin{})
	full := views(0, 1, 2)
	var got []int
	for i := 0; i < 6; i++ {
		got = append(got, full[p.Pick(full)].Index)
	}
	want := []int{0, 1, 2, 0, 1, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("cycle = %v, want %v", got, want)
		}
	}
	// Worker 1 benched: the cursor keeps advancing over the fleet index
	// space, so 1 simply drops out of the rotation.
	holed := views(0, 2)
	got = got[:0]
	for i := 0; i < 4; i++ {
		got = append(got, holed[p.Pick(holed)].Index)
	}
	want = []int{0, 2, 0, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("cycle with hole = %v, want %v", got, want)
		}
	}
	if p.Pick(nil) != -1 {
		t.Error("round-robin picked from an empty fleet")
	}
}

func TestLeastLoadedPolicy(t *testing.T) {
	p := leastLoaded{}
	vs := views(0, 1, 2)
	vs[0].Queued = 2
	vs[1].Running = 1
	vs[2].Inflight = 3
	if i := p.Pick(vs); vs[i].Index != 1 {
		t.Errorf("picked index %d, want the least-loaded worker 1", vs[i].Index)
	}
	// Ties break to the lowest fleet index for stability.
	vs[1].Running = 2
	vs[0].Queued = 2
	vs[2].Inflight = 2
	if i := p.Pick(vs); vs[i].Index != 0 {
		t.Errorf("tie broke to index %d, want 0", vs[i].Index)
	}
	if p.Pick(nil) != -1 {
		t.Error("least-loaded picked from an empty fleet")
	}
}
