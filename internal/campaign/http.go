package campaign

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"c3d/pkg/c3d/api"
)

// Campaign-list pagination bounds, matching the job list in internal/server.
const (
	defaultListLimit = 100
	maxListLimit     = 1000
)

// Handler returns the coordinator's HTTP API:
//
//	GET    /healthz                   liveness + fleet + cache counters
//	GET    /v1/capabilities           the fleet's shared capability document
//	POST   /v1/campaigns              submit an api.CampaignSpec -> api.SubmitResponse
//	GET    /v1/campaigns              list campaign statuses (paginated: ?offset=&limit=)
//	GET    /v1/campaigns/{id}         one campaign's status
//	GET    /v1/campaigns/{id}/results per-job result documents, in submission order
//	DELETE /v1/campaigns/{id}         cancel a campaign
//
// Errors use the same uniform api.ErrorEnvelope as the worker daemons;
// admission rejections answer 429 with code rate_limited.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", c.handleHealth)
	mux.HandleFunc("GET /v1/capabilities", c.handleCapabilities)
	mux.HandleFunc("POST /v1/campaigns", c.handleSubmit)
	mux.HandleFunc("GET /v1/campaigns", c.handleList)
	mux.HandleFunc("GET /v1/campaigns/{id}", c.handleStatus)
	mux.HandleFunc("GET /v1/campaigns/{id}/results", c.handleResults)
	mux.HandleFunc("DELETE /v1/campaigns/{id}", c.handleCancel)
	return mux
}

func (c *Coordinator) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, c.Health())
}

func (c *Coordinator) handleCapabilities(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, c.Capabilities())
}

func (c *Coordinator) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec api.CampaignSpec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, &api.Error{
			Code:       api.CodeInvalidSpec,
			Message:    fmt.Sprintf("decoding campaign spec: %v", err),
			HTTPStatus: http.StatusBadRequest,
		})
		return
	}
	resp, err := c.Submit(spec)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusAccepted, resp)
}

func (c *Coordinator) handleList(w http.ResponseWriter, r *http.Request) {
	offset := queryInt(r, "offset", 0)
	limit := queryInt(r, "limit", defaultListLimit)
	if limit <= 0 {
		limit = defaultListLimit
	}
	if limit > maxListLimit {
		limit = maxListLimit
	}
	writeJSON(w, http.StatusOK, c.List(offset, limit))
}

func (c *Coordinator) handleStatus(w http.ResponseWriter, r *http.Request) {
	st, err := c.Status(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// handleResults serialises the results envelope by hand: the per-job result
// documents must reach the client byte-for-byte as the workers produced them
// (the whole point of deterministic assembly), and an indenting encoder
// would reformat the embedded raw documents. json.RawMessage round-trips
// verbatim through json.Unmarshal on the client side.
func (c *Coordinator) handleResults(w http.ResponseWriter, r *http.Request) {
	res, err := c.Results(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "{\"id\":%q,\"results\":[", res.ID)
	for i, doc := range res.Results {
		if i > 0 {
			buf.WriteByte(',')
		}
		buf.Write(doc)
	}
	buf.WriteString("]}\n")
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(buf.Bytes())
}

func (c *Coordinator) handleCancel(w http.ResponseWriter, r *http.Request) {
	st, err := c.Cancel(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func queryInt(r *http.Request, key string, def int) int {
	v := r.URL.Query().Get(key)
	if v == "" {
		return def
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return def
	}
	return n
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// writeError emits the uniform envelope, taking the status from the
// *api.Error when the coordinator produced one.
func writeError(w http.ResponseWriter, err error) {
	var apiErr *api.Error
	if !errors.As(err, &apiErr) {
		apiErr = &api.Error{Code: api.CodeInternal, Message: err.Error(), HTTPStatus: http.StatusInternalServerError}
	}
	status := apiErr.HTTPStatus
	if status == 0 {
		status = http.StatusInternalServerError
	}
	writeJSON(w, status, api.ErrorEnvelope{Error: apiErr})
}
