// Package campaign is the distributed-campaign coordinator behind
// `c3dd -coordinator`: it shards an ordered list of job specs across a fleet
// of worker daemons over the public job API (pkg/c3d/api), routes each job
// through a pluggable policy, retries jobs whose worker died mid-flight, and
// assembles the per-job result documents in submission order.
//
// Two properties make distribution invisible in the output. First, every job
// is deterministic — the same spec produces the same result bytes on any
// worker at any parallelism — so routing is purely a performance decision
// and a retried or duplicated job is harmless. Second, assembly is by
// submission index, never completion order, so campaign output is
// byte-identical to a local run of the same specs. The fleet tests pin both:
// results are cmp-equal across routing policies and worker counts 1, 2
// and 4.
//
// The same determinism funds the content-addressed result cache: results are
// keyed by a hash of the canonical spec (CacheKey), so a repeated campaign —
// or any campaign sharing jobs with an earlier one — is answered without
// dispatching anything. Admission is token-bucket limited at the door: a
// campaign takes one token per job or is rejected whole with 429.
package campaign

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"reflect"
	"sync"
	"time"

	"c3d/pkg/c3d/api"
)

// Config parameterises a Coordinator.
type Config struct {
	// Workers lists the base URLs of the worker daemons (required).
	Workers []string
	// Policy names the routing policy (default DefaultPolicy).
	Policy string
	// RatePerSec and Burst shape the admission token bucket: a campaign
	// submission takes one token per job (defaults 50/s, burst 200).
	RatePerSec float64
	Burst      int
	// CacheEntries bounds the content-addressed result cache (default 1024).
	CacheEntries int
	// MaxAttempts bounds dispatch attempts per job before the job — and its
	// campaign — fails (default 3). Only transient failures (worker
	// unreachable, job cancelled underneath us) consume retries; a job the
	// worker reports as failed is deterministic and fails immediately.
	MaxAttempts int
	// MaxConcurrent bounds jobs dispatched to the fleet at once, across all
	// campaigns (default 2x worker count).
	MaxConcurrent int
	// MaxCampaigns bounds retained finished campaigns (default 256).
	MaxCampaigns int
	// Cooldown is how long a worker sits out after a transient failure
	// before it is routable again (default 2s).
	Cooldown time.Duration
	// DispatchTimeout bounds one dispatch (submit + run + fetch result) of
	// one job on one worker. A dispatch that exceeds it counts as a transient
	// failure: the worker is benched for the cooldown and the job reassigned.
	// Zero disables the deadline.
	DispatchTimeout time.Duration
	// HedgeAfter speculatively re-dispatches a job to a second worker when
	// the first has not answered within this duration, first result winning
	// and the loser cancelled. Zero disables hedging. Safe because results
	// are deterministic and content-addressed: a duplicated job can waste a
	// dispatch, never change an answer.
	HedgeAfter time.Duration
	// ProbeTimeout bounds each /healthz load probe (default 2s).
	ProbeTimeout time.Duration
	// CancelGrace bounds the best-effort worker-side job cancel issued when
	// a campaign is cancelled mid-dispatch (default 2s).
	CancelGrace time.Duration
	// JournalDir enables the durable campaign journal: an append-only JSONL
	// WAL plus a disk-backed result cache under this directory. On
	// construction the coordinator replays the journal, restores finished
	// campaigns and resumes interrupted ones (see journal.go). Empty keeps
	// everything in memory.
	JournalDir string
	// ClientOptions is applied to every per-worker api.Client.
	ClientOptions []api.ClientOption
	// Logf receives coordinator decisions (nil = silent).
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.Policy == "" {
		c.Policy = DefaultPolicy
	}
	if c.RatePerSec <= 0 {
		c.RatePerSec = 50
	}
	if c.Burst <= 0 {
		c.Burst = 200
	}
	if c.CacheEntries <= 0 {
		c.CacheEntries = 1024
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 3
	}
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = 2 * len(c.Workers)
	}
	if c.MaxCampaigns <= 0 {
		c.MaxCampaigns = 256
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 2 * time.Second
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = 2 * time.Second
	}
	if c.CancelGrace <= 0 {
		c.CancelGrace = 2 * time.Second
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// worker is the coordinator's handle on one daemon: its client plus health
// and load bookkeeping. healthy-ness is edge-triggered by dispatch outcomes —
// a transient failure starts a cooldown during which the worker is not
// routable; the next dispatch after cooldown re-probes it implicitly.
type worker struct {
	index  int
	url    string
	client *api.Client

	mu       sync.Mutex
	cooldown time.Time // unroutable until this instant
	assigned int64     // jobs ever dispatched here
	inflight int64     // dispatched and not yet finished
	queued   int       // last /healthz scheduler counters
	running  int
}

func (w *worker) healthy(now time.Time) bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return !now.Before(w.cooldown) || w.cooldown.IsZero()
}

func (w *worker) benched(until time.Time) {
	w.mu.Lock()
	w.cooldown = until
	w.mu.Unlock()
}

func (w *worker) view(now time.Time) api.WorkerHealth {
	w.mu.Lock()
	defer w.mu.Unlock()
	return api.WorkerHealth{
		URL:      w.url,
		Healthy:  !now.Before(w.cooldown) || w.cooldown.IsZero(),
		Assigned: w.assigned,
		Inflight: w.inflight,
	}
}

// Coordinator shards campaigns across a worker fleet. Construct with New,
// serve its Handler, or drive it directly through Submit/Status/Results.
type Coordinator struct {
	cfg     Config
	workers []*worker
	spec    PolicySpec
	bucket  *tokenBucket
	cache   *resultCache
	caps    api.Capabilities
	sem     chan struct{} // global dispatch slots
	journal *journal      // nil without JournalDir

	// stopCtx is the parent of every campaign context: cancelling it (Close)
	// cancels all running campaigns at once. runWg counts live campaign
	// runners so Close and Drain can wait for them.
	stopCtx   context.Context
	stop      context.CancelFunc
	runWg     sync.WaitGroup
	closeOnce sync.Once

	policyMu sync.Mutex // serialises Pick (policies keep state)
	policy   Policy

	mu        sync.Mutex
	campaigns map[string]*campaign
	order     []*campaign // insertion order, for listing + eviction
	nextID    int
	closed    bool
}

// New builds a coordinator and performs the capabilities handshake: every
// worker must be reachable and the fleet must be homogeneous (identical
// capability documents), because a heterogeneous fleet could route the same
// spec to workers that disagree about it. The fleet's shared capabilities
// become the coordinator's own /v1/capabilities answer.
func New(ctx context.Context, cfg Config) (*Coordinator, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Workers) == 0 {
		return nil, fmt.Errorf("campaign: no workers configured")
	}
	if cfg.DispatchTimeout < 0 {
		return nil, fmt.Errorf("campaign: DispatchTimeout must be non-negative")
	}
	if cfg.HedgeAfter < 0 {
		return nil, fmt.Errorf("campaign: HedgeAfter must be non-negative")
	}
	spec, err := LookupPolicy(cfg.Policy)
	if err != nil {
		return nil, err
	}
	diskCache := ""
	if cfg.JournalDir != "" {
		diskCache = cacheDir(cfg.JournalDir)
	}
	stopCtx, stop := context.WithCancel(context.Background())
	c := &Coordinator{
		cfg:       cfg,
		spec:      spec,
		policy:    spec.New(),
		bucket:    newTokenBucket(cfg.RatePerSec, cfg.Burst),
		cache:     newResultCache(cfg.CacheEntries, diskCache, cfg.Logf),
		sem:       make(chan struct{}, cfg.MaxConcurrent),
		stopCtx:   stopCtx,
		stop:      stop,
		campaigns: make(map[string]*campaign),
	}
	for i, u := range cfg.Workers {
		c.workers = append(c.workers, &worker{
			index:  i,
			url:    u,
			client: api.NewClient(u, cfg.ClientOptions...),
		})
	}
	for i, w := range c.workers {
		caps, err := w.client.Capabilities(ctx)
		if err != nil {
			stop()
			return nil, fmt.Errorf("campaign: worker %s handshake: %w", w.url, err)
		}
		if i == 0 {
			c.caps = *caps
			continue
		}
		if !reflect.DeepEqual(c.caps, *caps) {
			stop()
			return nil, fmt.Errorf("campaign: heterogeneous fleet: %s (version %s) and %s (version %s) disagree on capabilities",
				c.workers[0].url, c.caps.Version, w.url, caps.Version)
		}
	}
	if cfg.JournalDir != "" {
		jl, recs, err := openJournal(cfg.JournalDir, cfg.Logf)
		if err != nil {
			stop()
			return nil, err
		}
		c.journal = jl
		c.replay(recs)
	}
	cfg.Logf("campaign: coordinator up: %d workers, policy %s", len(c.workers), spec.Name)
	return c, nil
}

// replay rebuilds journaled campaigns after a restart. A campaign with a
// journaled terminal state is restored as a record: done campaigns reload
// their result bytes from the disk cache (and are re-run instead if any
// result went missing), failed and cancelled ones keep their terminal state.
// A campaign without one — interrupted by a crash or stop — is re-run
// through the normal runner with every job queued: jobs whose results are
// already in the disk cache resolve as cache hits without touching the
// fleet, only the remainder is dispatched. Assembly by submission index then
// makes the resumed output byte-identical to an uninterrupted run.
func (c *Coordinator) replay(recs []journalRecord) {
	states, maxSeq := replayJournal(recs)
	c.nextID = maxSeq
	resumed := 0
	for _, st := range states {
		ctx, cancel := context.WithCancel(c.stopCtx)
		cp := &campaign{id: st.id, created: time.Now(), ctx: ctx, cancel: cancel, state: api.StateRunning}
		ok := true
		for _, js := range st.spec.Jobs {
			key, err := CacheKey(js)
			if err != nil {
				c.cfg.Logf("campaign: replay: %s has an uncanonicalisable spec (%v); dropping it", st.id, err)
				ok = false
				break
			}
			cp.jobs = append(cp.jobs, &campaignJob{spec: js, key: key, state: api.StateQueued})
		}
		if !ok || len(cp.jobs) == 0 {
			cancel()
			continue
		}
		if api.Terminal(st.state) {
			c.restoreTerminal(cp, st)
		} else {
			c.runWg.Add(1)
			go c.run(cp)
			resumed++
		}
		c.mu.Lock()
		c.campaigns[cp.id] = cp
		c.order = append(c.order, cp)
		c.mu.Unlock()
	}
	if len(states) > 0 {
		c.cfg.Logf("campaign: journal replayed: %d campaigns restored, %d resumed", len(states)-resumed, resumed)
	}
}

// restoreTerminal settles a replayed campaign that had already reached a
// terminal state: jobs whose results are still in the cache come back as
// done cache hits, the rest inherit the campaign's fate. A done campaign
// missing a result (cache wiped between runs) is demoted to a re-run — the
// journal records intent, the cache holds the bytes.
func (c *Coordinator) restoreTerminal(cp *campaign, st *replayState) {
	if st.state == api.StateDone {
		for _, j := range cp.jobs {
			if !c.cache.has(j.key) {
				c.cfg.Logf("campaign: replay: %s is journaled done but result %s is gone; re-running", cp.id, j.key)
				c.runWg.Add(1)
				go c.run(cp)
				return
			}
		}
	}
	for _, j := range cp.jobs {
		if data, ok := c.cache.get(j.key); ok {
			j.state, j.result, j.cacheHit = api.StateDone, data, true
		} else {
			j.state, j.errMsg = api.StateCancelled, "not completed before shutdown"
		}
	}
	cp.state, cp.err = st.state, st.errMsg
	cp.cancel()
}

// Capabilities returns the fleet's shared capability document.
func (c *Coordinator) Capabilities() api.Capabilities { return c.caps }

// Close hard-stops the coordinator: admission stops, every running campaign
// is cancelled (in-flight worker jobs get a best-effort cancel), and Close
// blocks until all campaign runners have settled. Stop-interrupted campaigns
// are deliberately not journaled terminal, so a journal-configured restart
// resumes them where they left off. Idempotent.
func (c *Coordinator) Close() {
	c.closeOnce.Do(func() {
		c.mu.Lock()
		c.closed = true
		c.mu.Unlock()
		c.stop()
		c.runWg.Wait()
		c.journal.close()
		c.cfg.Logf("campaign: coordinator stopped")
	})
}

// Drain gracefully stops the coordinator: admission stops immediately (new
// submissions answer 503 shutting_down), campaigns already admitted run to
// completion, and Drain returns once they settle — or once ctx expires, in
// which case it falls back to Close's hard cancel and returns ctx's error.
// Either way the coordinator is fully stopped on return.
func (c *Coordinator) Drain(ctx context.Context) error {
	c.mu.Lock()
	c.closed = true
	c.mu.Unlock()
	done := make(chan struct{})
	go func() {
		c.runWg.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = ctx.Err()
		c.cfg.Logf("campaign: drain deadline expired; cancelling remaining campaigns")
	}
	c.Close()
	return err
}

// campaign is one submitted CampaignSpec working its way through the fleet.
type campaign struct {
	id      string
	created time.Time
	ctx     context.Context
	cancel  context.CancelFunc

	mu    sync.Mutex
	state string
	err   string
	jobs  []*campaignJob
}

type campaignJob struct {
	spec api.JobSpec
	key  string // content address

	mu       sync.Mutex
	state    string
	worker   string
	cacheHit bool
	attempts int
	hedges   int
	errMsg   string
	result   []byte
}

// Submit admits a campaign: validates every spec against the fleet's
// capabilities, charges the token bucket one token per job (atomically —
// admit all or reject all), and starts the runner. Errors are *api.Error so
// the HTTP layer maps them directly.
func (c *Coordinator) Submit(spec api.CampaignSpec) (*api.SubmitResponse, error) {
	if len(spec.Jobs) == 0 {
		return nil, &api.Error{Code: api.CodeInvalidSpec, Message: "campaign has no jobs", HTTPStatus: http.StatusBadRequest}
	}
	for i, js := range spec.Jobs {
		if err := c.caps.SupportsSpec(js); err != nil {
			return nil, &api.Error{
				Code:       api.CodeInvalidSpec,
				Message:    fmt.Sprintf("job %d: %v", i, err),
				HTTPStatus: http.StatusBadRequest,
			}
		}
	}
	if !c.bucket.take(len(spec.Jobs)) {
		return nil, &api.Error{
			Code:       api.CodeRateLimited,
			Message:    fmt.Sprintf("admission rate exceeded (%d jobs; %g/s, burst %d)", len(spec.Jobs), c.cfg.RatePerSec, c.cfg.Burst),
			HTTPStatus: http.StatusTooManyRequests,
		}
	}

	ctx, cancel := context.WithCancel(c.stopCtx)
	cp := &campaign{created: time.Now(), ctx: ctx, cancel: cancel, state: api.StateRunning}
	for _, js := range spec.Jobs {
		key, err := CacheKey(js)
		if err != nil {
			cancel()
			return nil, &api.Error{Code: api.CodeInvalidSpec, Message: err.Error(), HTTPStatus: http.StatusBadRequest}
		}
		cp.jobs = append(cp.jobs, &campaignJob{spec: js, key: key, state: api.StateQueued})
	}

	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		cancel()
		return nil, &api.Error{Code: api.CodeShuttingDown, Message: "coordinator is shutting down", HTTPStatus: http.StatusServiceUnavailable}
	}
	c.nextID++
	cp.id = fmt.Sprintf("campaign-%06d", c.nextID)
	c.campaigns[cp.id] = cp
	c.order = append(c.order, cp)
	c.evictLocked()
	c.runWg.Add(1)
	c.mu.Unlock()

	// Journal admission before the runner starts, so job records can never
	// precede their campaign record in the WAL.
	c.journal.append(journalRecord{Type: recCampaign, ID: cp.id, Spec: &spec})
	c.cfg.Logf("campaign: %s admitted: %d jobs", cp.id, len(cp.jobs))
	go c.run(cp)
	return &api.SubmitResponse{ID: cp.id, State: api.StateRunning}, nil
}

// evictLocked drops the oldest finished campaigns beyond the retention
// bound; unfinished campaigns are never evicted. Mirrors the job-table
// eviction in internal/server.
func (c *Coordinator) evictLocked() {
	excess := len(c.order) - c.cfg.MaxCampaigns
	if excess <= 0 {
		return
	}
	kept := c.order[:0]
	for _, cp := range c.order {
		if excess > 0 && api.Terminal(cp.snapshot().State) {
			delete(c.campaigns, cp.id)
			excess--
			continue
		}
		kept = append(kept, cp)
	}
	c.order = kept
}

// run executes every job of a campaign (bounded by the coordinator-wide
// dispatch semaphore) and settles the campaign state when all are terminal.
func (c *Coordinator) run(cp *campaign) {
	defer c.runWg.Done()
	var wg sync.WaitGroup
	for i, j := range cp.jobs {
		wg.Add(1)
		go func(idx int, j *campaignJob) {
			defer wg.Done()
			select {
			case c.sem <- struct{}{}:
				defer func() { <-c.sem }()
			case <-cp.ctx.Done():
				j.finish(api.StateCancelled, "", "campaign cancelled")
				return
			}
			c.runJob(cp, idx, j)
		}(i, j)
	}
	wg.Wait()

	state, errMsg := api.StateDone, ""
	for i, j := range cp.jobs {
		js := j.doc(i)
		switch js.State {
		case api.StateFailed:
			state = api.StateFailed
			if errMsg == "" {
				errMsg = fmt.Sprintf("job %d failed: %s", i, js.Error)
			}
		case api.StateCancelled:
			if state == api.StateDone {
				state, errMsg = api.StateCancelled, "campaign cancelled"
			}
		}
	}
	cp.mu.Lock()
	cp.state, cp.err = state, errMsg
	cp.mu.Unlock()
	cp.cancel()
	// A cancellation caused by coordinator shutdown is not a verdict on the
	// campaign — leave it non-terminal in the journal so a restart resumes
	// it. Every other settlement (done, failed, user cancel) is journaled.
	if c.stopCtx.Err() == nil || state != api.StateCancelled {
		c.journal.append(journalRecord{Type: recCampaignState, ID: cp.id, State: state, Error: errMsg})
	}
	c.cfg.Logf("campaign: %s %s (cache hits %d/%d)", cp.id, state, cp.cacheHits(), len(cp.jobs))
}

// runJob resolves one job: cache first, then dispatch with
// retry-and-reassignment. Worker-reported failure is deterministic and
// final; a worker that vanished, hung past the dispatch deadline or
// cancelled underneath us is benched for the cooldown and the job is
// reassigned, up to MaxAttempts.
func (c *Coordinator) runJob(cp *campaign, idx int, j *campaignJob) {
	if data, ok := c.cache.get(j.key); ok {
		j.mu.Lock()
		j.state, j.result, j.cacheHit = api.StateDone, data, true
		j.mu.Unlock()
		c.journal.append(journalRecord{Type: recJob, ID: cp.id, Index: idx, Key: j.key, State: api.StateDone})
		return
	}

	var lastErr string
	for attempt := 1; attempt <= c.cfg.MaxAttempts; attempt++ {
		if cp.ctx.Err() != nil {
			j.finish(api.StateCancelled, "", "campaign cancelled")
			return
		}
		w := c.pick(cp.ctx)
		if w == nil {
			if cp.ctx.Err() != nil {
				j.finish(api.StateCancelled, "", "campaign cancelled")
			} else {
				j.finish(api.StateFailed, "", fmt.Sprintf("no healthy worker (after %d attempts: %s)", attempt-1, lastErr))
			}
			return
		}
		j.mu.Lock()
		j.state, j.worker, j.attempts = api.StateRunning, w.url, attempt
		j.mu.Unlock()

		data, permanent, err := c.dispatchHedged(cp, idx, j, w)
		if err == nil {
			c.cache.put(j.key, data)
			j.finish(api.StateDone, "", "")
			j.mu.Lock()
			j.result = data
			j.mu.Unlock()
			c.journal.append(journalRecord{Type: recJob, ID: cp.id, Index: idx, Key: j.key, State: api.StateDone})
			return
		}
		if cp.ctx.Err() != nil {
			j.finish(api.StateCancelled, "", "campaign cancelled")
			return
		}
		if permanent {
			// Deterministic failure: every worker would report the same, and
			// the campaign cannot succeed — stop paying for its other jobs.
			j.finish(api.StateFailed, "", err.Error())
			cp.cancel()
			return
		}
		lastErr = err.Error()
	}
	j.finish(api.StateFailed, "", fmt.Sprintf("exhausted %d attempts: %s", c.cfg.MaxAttempts, lastErr))
	cp.cancel()
}

// dispatchHedged runs one dispatch round for a job: a primary worker, plus —
// when HedgeAfter is set and the primary is slow — at most one speculative
// re-dispatch to a second worker. First verdict wins: a success or a
// deterministic failure from either dispatch settles the round and cancels
// the other (which in turn cancels the job worker-side). Hedging is safe
// because results are content-addressed and bit-deterministic, so a
// duplicated job can waste a dispatch but never change an answer. A worker
// whose dispatch failed transiently (or timed out against DispatchTimeout)
// is benched inside the round.
func (c *Coordinator) dispatchHedged(cp *campaign, idx int, j *campaignJob, primary *worker) ([]byte, bool, error) {
	type outcome struct {
		w         *worker
		data      []byte
		permanent bool
		err       error
	}
	results := make(chan outcome, 2) // buffered: a late loser must never block
	var cancelMu sync.Mutex
	var cancels []context.CancelFunc
	cancelAll := func() {
		cancelMu.Lock()
		for _, cancel := range cancels {
			cancel()
		}
		cancelMu.Unlock()
	}
	defer cancelAll()

	launch := func(w *worker) {
		ctx, cancel := context.WithCancel(cp.ctx)
		if c.cfg.DispatchTimeout > 0 {
			ctx, cancel = context.WithTimeout(cp.ctx, c.cfg.DispatchTimeout)
		}
		cancelMu.Lock()
		cancels = append(cancels, cancel)
		cancelMu.Unlock()
		c.runWg.Add(1)
		go func() {
			defer c.runWg.Done()
			data, permanent, err := c.dispatch(ctx, w, j.spec)
			results <- outcome{w: w, data: data, permanent: permanent, err: err}
		}()
	}
	launch(primary)
	launched := 1

	var hedgeTimer *time.Timer
	var hedgeC <-chan time.Time
	if c.cfg.HedgeAfter > 0 {
		hedgeTimer = time.NewTimer(c.cfg.HedgeAfter)
		defer hedgeTimer.Stop()
		hedgeC = hedgeTimer.C
	}

	var firstErr error
	for settled := 0; settled < launched; {
		select {
		case out := <-results:
			settled++
			if out.err == nil || out.permanent {
				// This dispatch settles the round; credit (or blame) its
				// worker, which under hedging may not be the primary.
				j.mu.Lock()
				j.worker = out.w.url
				j.mu.Unlock()
				return out.data, out.permanent, out.err
			}
			if cp.ctx.Err() == nil {
				until := time.Now().Add(c.cfg.Cooldown)
				out.w.benched(until)
				c.cfg.Logf("campaign: %s job %d on %s failed transiently (%v); benching worker until %s",
					cp.id, idx, out.w.url, out.err, until.Format(time.RFC3339))
			}
			if firstErr == nil {
				firstErr = out.err
			}
		case <-hedgeC:
			hedgeC = nil
			hw := c.pickHedge(primary)
			if hw == nil {
				continue // no second worker free; keep waiting on the primary
			}
			j.mu.Lock()
			j.attempts++
			j.hedges++
			j.mu.Unlock()
			c.cfg.Logf("campaign: %s job %d straggling on %s after %s; hedging to %s",
				cp.id, idx, primary.url, c.cfg.HedgeAfter, hw.url)
			launch(hw)
			launched++
		}
	}
	return nil, false, firstErr
}

// pickHedge chooses a second worker for a hedged dispatch: routable and not
// the primary, through the policy but without a load refresh — a hedge is
// opportunistic, so if no other worker is routable right now there simply is
// no hedge.
func (c *Coordinator) pickHedge(primary *worker) *worker {
	now := time.Now()
	var views []WorkerView
	for _, w := range c.workers {
		if w == primary || !w.healthy(now) {
			continue
		}
		w.mu.Lock()
		views = append(views, WorkerView{
			Index:    w.index,
			URL:      w.url,
			Healthy:  true,
			Queued:   w.queued,
			Running:  w.running,
			Inflight: w.inflight,
			Assigned: w.assigned,
		})
		w.mu.Unlock()
	}
	if len(views) == 0 {
		return nil
	}
	c.policyMu.Lock()
	i := c.policy.Pick(views)
	c.policyMu.Unlock()
	if i < 0 || i >= len(views) {
		return nil
	}
	return c.workers[views[i].Index]
}

// pick chooses a worker through the routing policy, refreshing /healthz
// counters first when the policy needs load data. When every worker is
// benched it waits for the earliest cooldown to lapse rather than failing —
// a fleet-wide blip should not kill a campaign. Returns nil only when the
// campaign is cancelled while waiting.
func (c *Coordinator) pick(ctx context.Context) *worker {
	for {
		now := time.Now()
		if c.spec.NeedsLoad {
			c.refreshLoads(ctx)
			now = time.Now()
		}
		var views []WorkerView
		for _, w := range c.workers {
			if !w.healthy(now) {
				continue
			}
			w.mu.Lock()
			views = append(views, WorkerView{
				Index:    w.index,
				URL:      w.url,
				Healthy:  true,
				Queued:   w.queued,
				Running:  w.running,
				Inflight: w.inflight,
				Assigned: w.assigned,
			})
			w.mu.Unlock()
		}
		if len(views) > 0 {
			c.policyMu.Lock()
			i := c.policy.Pick(views)
			c.policyMu.Unlock()
			if i >= 0 && i < len(views) {
				return c.workers[views[i].Index]
			}
		}
		// All benched (or the policy abstained): wait for the earliest
		// cooldown to lapse, then retry.
		wait := c.cfg.Cooldown
		for _, w := range c.workers {
			w.mu.Lock()
			if d := w.cooldown.Sub(now); d > 0 && d < wait {
				wait = d
			}
			w.mu.Unlock()
		}
		select {
		case <-time.After(wait + time.Millisecond):
		case <-ctx.Done():
			return nil
		}
	}
}

// refreshLoads probes every routable worker's /healthz so load-aware
// policies see fresh scheduler counters. A worker that fails its probe is
// benched — the probe doubles as a health check.
func (c *Coordinator) refreshLoads(ctx context.Context) {
	now := time.Now()
	var wg sync.WaitGroup
	for _, w := range c.workers {
		if !w.healthy(now) {
			continue
		}
		wg.Add(1)
		go func(w *worker) {
			defer wg.Done()
			probeCtx, cancel := context.WithTimeout(ctx, c.cfg.ProbeTimeout)
			defer cancel()
			h, err := w.client.Health(probeCtx)
			if err != nil {
				w.benched(time.Now().Add(c.cfg.Cooldown))
				return
			}
			w.mu.Lock()
			w.queued, w.running = h.Queued, h.Running
			w.mu.Unlock()
		}(w)
	}
	wg.Wait()
}

// dispatch runs one job on one worker end to end: submit, wait, fetch the
// result. permanent marks failures that retrying elsewhere cannot fix (the
// job itself failed — deterministic); everything else (transport errors,
// the worker cancelling the job, e.g. during shutdown) is transient and
// worth reassigning.
func (c *Coordinator) dispatch(ctx context.Context, w *worker, spec api.JobSpec) (data []byte, permanent bool, err error) {
	w.mu.Lock()
	w.assigned++
	w.inflight++
	w.mu.Unlock()
	defer func() {
		w.mu.Lock()
		w.inflight--
		w.mu.Unlock()
	}()

	sub, err := w.client.Submit(ctx, spec)
	if err != nil {
		return nil, false, fmt.Errorf("submit: %w", err)
	}
	st, err := w.client.Wait(ctx, sub.ID)
	if err != nil {
		if ctx.Err() != nil {
			// Campaign cancelled, dispatch deadline hit, or a hedge won
			// elsewhere: tell the worker to stop wasting cycles on this job.
			cancelCtx, cancel := context.WithTimeout(context.Background(), c.cfg.CancelGrace)
			defer cancel()
			w.client.Cancel(cancelCtx, sub.ID)
		}
		return nil, false, fmt.Errorf("wait for %s: %w", sub.ID, err)
	}
	switch st.State {
	case api.StateDone:
		raw, err := w.client.Result(ctx, sub.ID)
		if err != nil {
			return nil, false, fmt.Errorf("result of %s: %w", sub.ID, err)
		}
		// Keep the JSON value bytes only: a result endpoint's trailing
		// newline is presentation, and json.RawMessage cannot carry it
		// through the results envelope anyway. Trimming here keeps the
		// cache, the Go API and the HTTP API bit-for-bit consistent.
		return bytes.TrimSpace(raw), false, nil
	case api.StateFailed:
		return nil, true, fmt.Errorf("worker %s job %s failed: %s", w.url, sub.ID, st.Error)
	default: // cancelled underneath us (worker drain/restart)
		return nil, false, fmt.Errorf("worker %s job %s %s", w.url, sub.ID, st.State)
	}
}

func (j *campaignJob) finish(state, workerURL, errMsg string) {
	j.mu.Lock()
	j.state, j.errMsg = state, errMsg
	if workerURL != "" {
		j.worker = workerURL
	}
	j.mu.Unlock()
}

func (j *campaignJob) doc(idx int) api.CampaignJob {
	j.mu.Lock()
	defer j.mu.Unlock()
	return api.CampaignJob{
		Index:    idx,
		State:    j.state,
		Worker:   j.worker,
		CacheHit: j.cacheHit,
		Attempts: j.attempts,
		Hedges:   j.hedges,
		Error:    j.errMsg,
	}
}

func (cp *campaign) cacheHits() int {
	n := 0
	for _, j := range cp.jobs {
		j.mu.Lock()
		if j.cacheHit {
			n++
		}
		j.mu.Unlock()
	}
	return n
}

func (cp *campaign) snapshot() api.CampaignStatus {
	cp.mu.Lock()
	state, errMsg := cp.state, cp.err
	cp.mu.Unlock()
	st := api.CampaignStatus{
		ID:    cp.id,
		State: state,
		Error: errMsg,
		Total: len(cp.jobs),
		Jobs:  make([]api.CampaignJob, 0, len(cp.jobs)),
	}
	for i, j := range cp.jobs {
		doc := j.doc(i)
		st.Jobs = append(st.Jobs, doc)
		if doc.State == api.StateDone {
			st.Done++
		}
		if doc.CacheHit {
			st.CacheHits++
		}
	}
	return st
}

// lookup finds a campaign by id.
func (c *Coordinator) lookup(id string) (*campaign, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	cp, ok := c.campaigns[id]
	return cp, ok
}

// Status returns one campaign's status document.
func (c *Coordinator) Status(id string) (*api.CampaignStatus, error) {
	cp, ok := c.lookup(id)
	if !ok {
		return nil, &api.Error{Code: api.CodeNotFound, Message: fmt.Sprintf("unknown campaign %q", id), HTTPStatus: http.StatusNotFound}
	}
	st := cp.snapshot()
	return &st, nil
}

// List returns one page of campaign statuses in submission order.
func (c *Coordinator) List(offset, limit int) *api.CampaignPage {
	c.mu.Lock()
	all := make([]*campaign, len(c.order))
	copy(all, c.order)
	c.mu.Unlock()
	total := len(all)
	if offset < 0 {
		offset = 0
	}
	if offset > total {
		offset = total
	}
	end := offset + limit
	if end > total {
		end = total
	}
	page := api.CampaignPage{Campaigns: []api.CampaignStatus{}, Total: total, Offset: offset}
	for _, cp := range all[offset:end] {
		page.Campaigns = append(page.Campaigns, cp.snapshot())
	}
	return &page
}

// Results returns a finished campaign's per-job result documents in
// submission order. Unfinished campaigns answer conflict; failed or
// cancelled ones answer job_failed with the first error.
func (c *Coordinator) Results(id string) (*api.CampaignResults, error) {
	cp, ok := c.lookup(id)
	if !ok {
		return nil, &api.Error{Code: api.CodeNotFound, Message: fmt.Sprintf("unknown campaign %q", id), HTTPStatus: http.StatusNotFound}
	}
	st := cp.snapshot()
	switch {
	case st.State == api.StateDone:
		res := &api.CampaignResults{ID: cp.id, Results: make([]json.RawMessage, len(cp.jobs))}
		for i, j := range cp.jobs {
			j.mu.Lock()
			res.Results[i] = json.RawMessage(j.result)
			j.mu.Unlock()
		}
		return res, nil
	case api.Terminal(st.State):
		return nil, &api.Error{Code: api.CodeJobFailed, Message: fmt.Sprintf("campaign %s %s: %s", cp.id, st.State, st.Error), HTTPStatus: http.StatusUnprocessableEntity}
	default:
		return nil, &api.Error{Code: api.CodeConflict, Message: fmt.Sprintf("campaign %s is %s; poll the status endpoint", cp.id, st.State), HTTPStatus: http.StatusConflict}
	}
}

// Cancel stops a campaign: unstarted jobs stay unrun, in-flight worker jobs
// are cancelled, and the campaign settles as cancelled (or whatever terminal
// state it had already reached).
func (c *Coordinator) Cancel(id string) (*api.CampaignStatus, error) {
	cp, ok := c.lookup(id)
	if !ok {
		return nil, &api.Error{Code: api.CodeNotFound, Message: fmt.Sprintf("unknown campaign %q", id), HTTPStatus: http.StatusNotFound}
	}
	cp.cancel()
	st := cp.snapshot()
	return &st, nil
}

// Health reports the coordinator's liveness document: campaign counts in the
// scheduler-counter positions, plus the fleet and cache views.
func (c *Coordinator) Health() api.Health {
	c.mu.Lock()
	status := "ok"
	if c.closed {
		status = "draining"
	}
	var queued, running, finished int
	for _, cp := range c.order {
		switch cp.snapshot().State {
		case api.StateRunning:
			running++
		case api.StateQueued:
			queued++
		default:
			finished++
		}
	}
	c.mu.Unlock()
	now := time.Now()
	h := api.Health{
		Status:   status,
		Version:  c.caps.Version,
		Queued:   queued,
		Running:  running,
		Finished: finished,
	}
	for _, w := range c.workers {
		h.Workers = append(h.Workers, w.view(now))
	}
	stats := c.cache.stats()
	h.Cache = &stats
	return h
}
