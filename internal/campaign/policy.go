package campaign

import (
	"fmt"
	"sync"
)

// WorkerView is the routing-time snapshot of one worker a Policy chooses
// from. Index is the worker's position in the coordinator's configured
// fleet; Queued/Running are the worker's own scheduler counters from its
// last /healthz probe (refreshed before Pick when the policy declares
// NeedsLoad); Inflight and Assigned are the coordinator's bookkeeping.
type WorkerView struct {
	Index    int
	URL      string
	Healthy  bool
	Queued   int
	Running  int
	Inflight int64
	Assigned int64
}

// Load is the worker's total outstanding work as seen by the coordinator:
// its own queue plus what this coordinator has dispatched and not yet seen
// finish. Counting Inflight matters when several dispatches race between
// healthz refreshes — without it, every racer would pick the same "idle"
// worker.
func (v WorkerView) Load() int64 {
	return int64(v.Queued) + int64(v.Running) + v.Inflight
}

// Policy assigns jobs to workers. Pick returns the index (into views) of the
// chosen worker, or -1 when no worker is acceptable; views only contains
// healthy workers. Implementations may keep state (the round-robin cursor) —
// the coordinator serialises Pick calls, so no internal locking is needed.
//
// Routing never affects results: campaign output is assembled in job order
// and every job is deterministic, so a policy is purely a performance
// choice. The fleet tests pin byte-identical campaign results across every
// registered policy at worker counts 1, 2 and 4.
type Policy interface {
	Pick(views []WorkerView) int
}

// PolicySpec describes a registered routing policy: identity, whether the
// coordinator must refresh worker /healthz counters before each Pick, and
// the factory producing a fresh (stateful) instance per coordinator.
type PolicySpec struct {
	Name string
	// Description is a one-line summary for listings.
	Description string
	// NeedsLoad asks the coordinator to probe worker /healthz before Pick,
	// so Queued/Running in the views are fresh rather than zero.
	NeedsLoad bool
	// New builds a policy instance. Must not return nil.
	New func() Policy
}

var (
	policyMu    sync.RWMutex
	policyOrder []string
	policies    = make(map[string]PolicySpec)
)

// RegisterPolicy adds a routing policy to the registry (same pattern as the
// design and topology registries: built-ins self-register in init, external
// packages can add their own). Registering a duplicate name panics — it is
// a programming error, not an input error.
func RegisterPolicy(spec PolicySpec) {
	if spec.Name == "" || spec.New == nil {
		panic("campaign: policy spec needs a name and a factory")
	}
	policyMu.Lock()
	defer policyMu.Unlock()
	if _, dup := policies[spec.Name]; dup {
		panic(fmt.Sprintf("campaign: duplicate policy %q", spec.Name))
	}
	policies[spec.Name] = spec
	policyOrder = append(policyOrder, spec.Name)
}

// Policies lists registered policy names in registration order.
func Policies() []string {
	policyMu.RLock()
	defer policyMu.RUnlock()
	return append([]string(nil), policyOrder...)
}

// LookupPolicy returns a registered policy spec by name.
func LookupPolicy(name string) (PolicySpec, error) {
	policyMu.RLock()
	defer policyMu.RUnlock()
	spec, ok := policies[name]
	if !ok {
		return PolicySpec{}, fmt.Errorf("campaign: unknown routing policy %q (have %v)", name, policyOrder)
	}
	return spec, nil
}

// DefaultPolicy is the routing policy used when none is configured.
const DefaultPolicy = "round-robin"

func init() {
	RegisterPolicy(PolicySpec{
		Name:        "round-robin",
		Description: "cycle through healthy workers in fleet order",
		New:         func() Policy { return &roundRobin{} },
	})
	RegisterPolicy(PolicySpec{
		Name:        "least-loaded",
		Description: "pick the healthy worker with the fewest queued+running+in-flight jobs (via /healthz)",
		NeedsLoad:   true,
		New:         func() Policy { return leastLoaded{} },
	})
}

// roundRobin cycles a cursor over the fleet, skipping unhealthy workers by
// construction (views are pre-filtered). The cursor advances over the fleet
// index space, not the filtered slice, so a worker rejoining after a
// cooldown slots back into its old turn.
type roundRobin struct {
	next int
}

func (r *roundRobin) Pick(views []WorkerView) int {
	if len(views) == 0 {
		return -1
	}
	// Choose the first candidate whose fleet index is >= the cursor,
	// wrapping; then advance the cursor past it.
	best := -1
	for i, v := range views {
		if v.Index >= r.next {
			best = i
			break
		}
	}
	if best == -1 {
		best = 0 // wrap
	}
	r.next = views[best].Index + 1
	return best
}

// leastLoaded picks the worker with the smallest Load; ties break to the
// lowest fleet index so the choice is stable.
type leastLoaded struct{}

func (leastLoaded) Pick(views []WorkerView) int {
	best := -1
	var bestLoad int64
	for i, v := range views {
		load := v.Load()
		if best == -1 || load < bestLoad {
			best, bestLoad = i, load
		}
	}
	return best
}
