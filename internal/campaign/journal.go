package campaign

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"c3d/pkg/c3d/api"
)

// The durable campaign journal: an append-only JSONL write-ahead log that
// lets a coordinator restart survive without losing (or re-running) work.
//
// Three record types matter:
//
//	{"type":"campaign","id":"campaign-000001","spec":{...}}   admission
//	{"type":"job","id":"campaign-000001","index":2,
//	 "key":"<sha256>","state":"done"}                         job completion
//	{"type":"campaign_state","id":"...","state":"done"}       settlement
//
// plus a {"type":"stop"} marker written on graceful shutdown. Result bytes
// never live in the journal — they flow through the content-addressed result
// cache, which becomes disk-backed under <dir>/cache when a journal is
// configured. The journal is therefore tiny (specs and hashes), and replay
// is: rebuild each campaign from its spec, then let the normal runner
// resolve every job — jobs whose content address is already in the cache hit
// it and are never re-dispatched, jobs without a cached result are
// re-enqueued and run. Because every job is deterministic and assembly is by
// submission index, the resumed campaign's assembled bytes are identical to
// an uninterrupted run's.
//
// Every record is fsynced as it is appended, so a kill -9 loses at most a
// torn final line, which replay ignores. Duplicate job records (a replayed
// job re-journals its cache hit) are harmless: replay keeps the union.

// journalRecord is one JSONL line. Type discriminates; unused fields stay
// empty and are omitted.
type journalRecord struct {
	Type  string            `json:"type"`
	ID    string            `json:"id,omitempty"`
	Spec  *api.CampaignSpec `json:"spec,omitempty"`
	Index int               `json:"index,omitempty"`
	Key   string            `json:"key,omitempty"`
	State string            `json:"state,omitempty"`
	Error string            `json:"error,omitempty"`
}

// Journal record types.
const (
	recCampaign      = "campaign"
	recJob           = "job"
	recCampaignState = "campaign_state"
	recStop          = "stop"
)

// journal is the open WAL file plus its append lock.
type journal struct {
	mu     sync.Mutex
	f      *os.File
	logf   func(format string, args ...any)
	closed bool
}

// journalPath returns the WAL file under a journal directory; cacheDir the
// sibling directory holding the disk-backed result cache.
func journalPath(dir string) string { return filepath.Join(dir, "journal.jsonl") }
func cacheDir(dir string) string    { return filepath.Join(dir, "cache") }

// openJournal creates the journal directory layout, replays any existing WAL
// into records, and opens the file for appending.
func openJournal(dir string, logf func(string, ...any)) (*journal, []journalRecord, error) {
	if err := os.MkdirAll(cacheDir(dir), 0o777); err != nil {
		return nil, nil, fmt.Errorf("campaign: creating journal dir: %w", err)
	}
	recs, err := readJournal(journalPath(dir))
	if err != nil {
		return nil, nil, err
	}
	f, err := os.OpenFile(journalPath(dir), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o666)
	if err != nil {
		return nil, nil, fmt.Errorf("campaign: opening journal: %w", err)
	}
	return &journal{f: f, logf: logf}, recs, nil
}

// readJournal parses a WAL file. A torn or corrupt line — the tail a crash
// can leave — ends the replay at that point rather than failing it: every
// record before the tear is intact (each append is one write+fsync).
func readJournal(path string) ([]journalRecord, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("campaign: reading journal: %w", err)
	}
	defer f.Close()
	var recs []journalRecord
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 16<<20)
	//c3dlint:allow ctxcheck(startup-time replay of a local journal file; bounded by file size, no network)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var rec journalRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			break // torn tail; everything before it is good
		}
		recs = append(recs, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("campaign: scanning journal: %w", err)
	}
	return recs, nil
}

// append writes one record and fsyncs it. Journal IO failure is reported,
// not fatal: the coordinator keeps serving (the campaign still completes),
// it just loses crash-durability for that record.
func (j *journal) append(rec journalRecord) {
	if j == nil {
		return
	}
	line, err := json.Marshal(rec)
	if err != nil {
		j.logf("campaign: journal: encoding %s record: %v", rec.Type, err)
		return
	}
	line = append(line, '\n')
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return
	}
	if _, err := j.f.Write(line); err != nil {
		j.logf("campaign: journal: appending %s record: %v", rec.Type, err)
		return
	}
	if err := j.f.Sync(); err != nil {
		j.logf("campaign: journal: fsync: %v", err)
	}
}

// close stamps the stop marker and closes the file. Idempotent.
func (j *journal) close() {
	if j == nil {
		return
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return
	}
	if line, err := json.Marshal(journalRecord{Type: recStop}); err == nil {
		line = append(line, '\n')
		if _, err := j.f.Write(line); err == nil {
			j.f.Sync()
		}
	}
	j.closed = true
	j.f.Close()
}

// replayState is one campaign reassembled from journal records.
type replayState struct {
	id       string
	spec     api.CampaignSpec
	jobsDone map[int]string // index -> content key, from job records
	state    string         // terminal campaign_state, or "" if none reached
	errMsg   string
}

// replayJournal folds the record list into per-campaign states, in admission
// order, plus the highest campaign sequence number seen (so new IDs continue
// the series instead of colliding with journaled ones).
func replayJournal(recs []journalRecord) (states []*replayState, maxSeq int) {
	byID := make(map[string]*replayState)
	for _, rec := range recs {
		switch rec.Type {
		case recCampaign:
			if rec.Spec == nil || rec.ID == "" {
				continue
			}
			if _, dup := byID[rec.ID]; dup {
				continue
			}
			st := &replayState{id: rec.ID, spec: *rec.Spec, jobsDone: make(map[int]string)}
			byID[rec.ID] = st
			states = append(states, st)
			var seq int
			if _, err := fmt.Sscanf(rec.ID, "campaign-%d", &seq); err == nil && seq > maxSeq {
				maxSeq = seq
			}
		case recJob:
			if st, ok := byID[rec.ID]; ok && rec.State == api.StateDone {
				st.jobsDone[rec.Index] = rec.Key
			}
		case recCampaignState:
			if st, ok := byID[rec.ID]; ok && api.Terminal(rec.State) {
				st.state, st.errMsg = rec.State, rec.Error
			}
		}
	}
	return states, maxSeq
}
