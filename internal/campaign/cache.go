package campaign

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sync"

	"c3d/pkg/c3d/api"
)

// CacheKey is the content address of a job's result: the SHA-256 of the
// canonical JSON of its spec. Canonicalisation zeroes the fields that are
// proven not to affect result bytes — Parallelism (results are bit-identical
// at any parallelism; the determinism CI gate enforces it) and Stream (the
// streaming and materialised trace paths are bit-identical; ditto) — so a
// sweep re-run with different host tuning still hits. Everything else,
// including the seed inside Params, stays verbatim: a different seed is a
// different result.
//
// Keying on content rather than job identity is safe precisely because every
// job is deterministic: two specs with equal keys produce equal bytes on any
// worker, which the fleet tests verify with cmp.
func CacheKey(spec api.JobSpec) (string, error) {
	norm := spec
	norm.Params.Parallelism = 0
	norm.Params.Stream = nil
	b, err := json.Marshal(norm)
	if err != nil {
		return "", fmt.Errorf("campaign: canonicalising spec: %w", err)
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}

// resultCache is the coordinator's content-addressed result store: an
// LRU-bounded map from CacheKey to the exact result bytes a worker served.
// Entries are immutable once stored — callers must not mutate returned
// slices.
type resultCache struct {
	mu    sync.Mutex
	max   int
	ll    *list.List // front = most recently used
	items map[string]*list.Element
	hits  int64
	miss  int64
}

type cacheEntry struct {
	key  string
	data []byte
}

func newResultCache(maxEntries int) *resultCache {
	if maxEntries <= 0 {
		maxEntries = 1024
	}
	return &resultCache{
		max:   maxEntries,
		ll:    list.New(),
		items: make(map[string]*list.Element),
	}
}

// get returns the cached result bytes and records a hit or miss.
func (c *resultCache) get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.miss++
		return nil, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).data, true
}

// put stores result bytes under key, evicting the least recently used entry
// beyond the bound. Storing an existing key refreshes recency but keeps the
// original bytes — identical by determinism, so there is nothing to update.
func (c *resultCache) put(key string, data []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&cacheEntry{key: key, data: data})
	for c.ll.Len() > c.max {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheEntry).key)
	}
}

// stats snapshots the cache counters in the wire shape.
func (c *resultCache) stats() api.CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return api.CacheStats{Entries: c.ll.Len(), Hits: c.hits, Misses: c.miss}
}
