package campaign

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"c3d/pkg/c3d/api"
)

// CacheKey is the content address of a job's result: the SHA-256 of the
// canonical JSON of its spec. Canonicalisation zeroes the fields that are
// proven not to affect result bytes — Parallelism (results are bit-identical
// at any parallelism; the determinism CI gate enforces it) and Stream (the
// streaming and materialised trace paths are bit-identical; ditto) — so a
// sweep re-run with different host tuning still hits. Everything else,
// including the seed and the sampling schedule inside Params, stays
// verbatim: a different seed is a different result, and a sampled run is a
// different result from a full run (and from a run under another schedule),
// so sampling is semantic for the cache by construction.
//
// Keying on content rather than job identity is safe precisely because every
// job is deterministic: two specs with equal keys produce equal bytes on any
// worker, which the fleet tests verify with cmp.
func CacheKey(spec api.JobSpec) (string, error) {
	norm := spec
	norm.Params.Parallelism = 0
	norm.Params.Stream = nil
	b, err := json.Marshal(norm)
	if err != nil {
		return "", fmt.Errorf("campaign: canonicalising spec: %w", err)
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}

// resultCache is the coordinator's content-addressed result store: an
// LRU-bounded map from CacheKey to the exact result bytes a worker served.
// Entries are immutable once stored — callers must not mutate returned
// slices.
//
// With a dir configured the cache is also disk-backed: every put writes
// <dir>/<key> (atomic temp+rename), and a memory miss falls back to disk
// before being counted a miss. The disk tier is unbounded and survives
// restarts — it is what makes journal replay cheap, since any job completed
// before a crash resolves as a cache hit instead of a re-dispatch.
type resultCache struct {
	mu    sync.Mutex
	max   int
	dir   string     // "" = memory only
	ll    *list.List // front = most recently used
	items map[string]*list.Element
	logf  func(format string, args ...any)
	hits  int64
	miss  int64
}

type cacheEntry struct {
	key  string
	data []byte
}

func newResultCache(maxEntries int, dir string, logf func(string, ...any)) *resultCache {
	if maxEntries <= 0 {
		maxEntries = 1024
	}
	if logf == nil {
		logf = func(string, ...any) {}
	}
	return &resultCache{
		max:   maxEntries,
		dir:   dir,
		ll:    list.New(),
		items: make(map[string]*list.Element),
		logf:  logf,
	}
}

// get returns the cached result bytes and records a hit or miss. Disk reads
// (after a memory miss) repopulate the memory tier and still count as hits.
func (c *resultCache) get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.hits++
		c.ll.MoveToFront(el)
		return el.Value.(*cacheEntry).data, true
	}
	if c.dir != "" && validCacheKey(key) {
		if data, err := os.ReadFile(filepath.Join(c.dir, key)); err == nil {
			c.hits++
			c.insertLocked(key, data)
			return data, true
		}
	}
	c.miss++
	return nil, false
}

// put stores result bytes under key, evicting the least recently used entry
// beyond the bound. Storing an existing key refreshes recency but keeps the
// original bytes — identical by determinism, so there is nothing to update.
func (c *resultCache) put(key string, data []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		return
	}
	c.insertLocked(key, data)
	if c.dir != "" && validCacheKey(key) {
		if err := writeFileAtomic(filepath.Join(c.dir, key), data); err != nil {
			c.logf("campaign: cache: persisting %s: %v", key, err)
		}
	}
}

// insertLocked adds a memory entry and trims to the LRU bound. Caller holds mu.
func (c *resultCache) insertLocked(key string, data []byte) {
	c.items[key] = c.ll.PushFront(&cacheEntry{key: key, data: data})
	//c3dlint:allow ctxcheck(LRU trim removes one entry per iteration; bounded by list length, runs under mu)
	for c.ll.Len() > c.max {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheEntry).key)
	}
}

// has reports whether key is resolvable from either tier without touching
// recency or the hit/miss counters — used by journal replay to decide which
// jobs still need work.
func (c *resultCache) has(key string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.items[key]; ok {
		return true
	}
	if c.dir == "" || !validCacheKey(key) {
		return false
	}
	_, err := os.Stat(filepath.Join(c.dir, key))
	return err == nil
}

// validCacheKey guards the disk tier against journal records containing
// anything but a hex digest (path traversal via a corrupt journal).
func validCacheKey(key string) bool {
	if len(key) != 64 {
		return false
	}
	for _, r := range key {
		if (r < '0' || r > '9') && (r < 'a' || r > 'f') {
			return false
		}
	}
	return true
}

// writeFileAtomic writes via a temp file and rename so a crash mid-write
// never leaves a truncated cache entry for replay to trust.
func writeFileAtomic(path string, data []byte) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".tmp-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// stats snapshots the cache counters in the wire shape.
func (c *resultCache) stats() api.CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return api.CacheStats{Entries: c.ll.Len(), Hits: c.hits, Misses: c.miss}
}
