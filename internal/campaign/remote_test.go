package campaign

import (
	"bytes"
	"fmt"
	"testing"

	"c3d/pkg/c3d"
	"c3d/pkg/c3d/api"
)

// TestRemoteSweepMatchesLocalBytes is the c3dexp -remote acceptance gate:
// a fig6 sweep run through a coordinator fleet must serialise to exactly the
// bytes a local run produces — at worker counts 1, 2 and 4, under both
// routing policies. This is precisely the CLI pipeline: RemoteSweep ->
// WriteResultsJSON versus Params -> Session -> Sweep -> WriteResultsJSON.
func TestRemoteSweepMatchesLocalBytes(t *testing.T) {
	params := c3d.Params{Quick: true, Workloads: []string{"streamcluster"}, Accesses: 2000}

	sess, err := params.Session()
	if err != nil {
		t.Fatal(err)
	}
	local, err := sess.Sweep(t.Context(), "fig6")
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := c3d.WriteResultsJSON(&want, local); err != nil {
		t.Fatal(err)
	}

	workers := startWorkers(t, 4)
	for _, policy := range Policies() {
		for _, n := range []int{1, 2, 4} {
			t.Run(fmt.Sprintf("%s-%dw", policy, n), func(t *testing.T) {
				_, cl := newCoordinator(t, Config{Workers: workers[:n], Policy: policy})
				results, err := c3d.RemoteSweep(t.Context(), api.NewClient(cl.BaseURL()), params, "fig6")
				if err != nil {
					t.Fatal(err)
				}
				var got bytes.Buffer
				if err := c3d.WriteResultsJSON(&got, results); err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(got.Bytes(), want.Bytes()) {
					t.Errorf("remote fig6 bytes differ from local run:\nremote: %.300s\nlocal:  %.300s", got.Bytes(), want.Bytes())
				}
			})
		}
	}
}

// TestRemoteSweepAllFansOut checks a whole-suite remote sweep fans out as
// one job per experiment id, reassembles in the remote's presentation order,
// and matches the local all-experiment sweep byte-for-byte.
func TestRemoteSweepAllFansOut(t *testing.T) {
	params := c3d.Params{Quick: true, Workloads: []string{"streamcluster"}, Accesses: 1000}

	sess, err := params.Session()
	if err != nil {
		t.Fatal(err)
	}
	local, err := sess.Sweep(t.Context(), c3d.ExperimentIDs()...)
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := c3d.WriteResultsJSON(&want, local); err != nil {
		t.Fatal(err)
	}

	co, cl := newCoordinator(t, Config{Workers: startWorkers(t, 2)})
	results, err := c3d.RemoteSweep(t.Context(), api.NewClient(cl.BaseURL()), params)
	if err != nil {
		t.Fatal(err)
	}
	var got bytes.Buffer
	if err := c3d.WriteResultsJSON(&got, results); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Error("remote all-experiment sweep bytes differ from local run")
	}

	// One job per experiment, and the fan-out actually used the fleet.
	page := co.List(0, 10)
	if len(page.Campaigns) != 1 || page.Campaigns[0].Total != len(c3d.ExperimentIDs()) {
		t.Fatalf("campaign fan-out = %+v, want %d jobs", page.Campaigns, len(c3d.ExperimentIDs()))
	}
	used := map[string]bool{}
	for _, j := range page.Campaigns[0].Jobs {
		used[j.Worker] = true
	}
	if len(used) != 2 {
		t.Errorf("all-experiment sweep used %d workers, want 2", len(used))
	}
}
