package faultify

import (
	"testing"

	"c3d/internal/leakcheck"
)

// TestMain fails the suite if any test leaks a module goroutine: injected
// hangs and delays park request handlers on timers, and every one of them
// must unwind when its test's server and context go away.
func TestMain(m *testing.M) { leakcheck.Main(m) }
