// Package faultify is deterministic fault injection for the job service and
// the campaign coordinator: a seeded schedule of transport- and server-level
// failures (connection resets, 5xx answers, delays, truncated bodies,
// hang-until-deadline) that can be spliced into an api.Client's HTTP
// transport or wrapped around a daemon's handler.
//
// Determinism is the point. An Injector draws every fault decision from a
// splitmix64 stream keyed by (seed, decision index), so the same plan and
// seed always produce the same fault schedule: decision i of a run is faulted
// (or not) identically on every replay, which makes chaos tests reproducible
// and their campaign outputs cmp-able against fault-free runs. The faults
// themselves are chosen to be recoverable by the fault-tolerance machinery
// they exercise — a reset is retried, a 503 is transient, a truncated body is
// a read error, a hang is bounded by the caller's deadline — so an injected
// run must finish with byte-identical results, never different ones.
//
// Plans are named and registered (same idiom as the design, topology and
// routing-policy registries): look one up with Lookup, or parse a
// "<plan>:<seed>" flag value with Parse. c3dd exposes the whole package
// behind its -chaos flag — server-side faults in worker mode, dispatch-path
// transport faults in coordinator mode.
//
// The capabilities endpoint (/v1/capabilities) is always exempt: it is the
// fleet handshake, consulted once at coordinator startup, and faulting it
// would turn "chaos during a campaign" into "coordinator refuses to boot" —
// a different (and uninteresting) failure mode.
package faultify

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Fault is one injected failure mode.
type Fault int

const (
	// FaultNone lets the request through untouched.
	FaultNone Fault = iota
	// FaultReset severs the connection: the client sees a transport error
	// before any response arrives.
	FaultReset
	// FaultServerError answers HTTP 503 with the uniform error envelope,
	// without the request ever reaching the real handler.
	FaultServerError
	// FaultDelay forwards the request after a deterministic pause.
	FaultDelay
	// FaultPartial forwards the request but truncates the response body
	// halfway, so the client's read fails.
	FaultPartial
	// FaultHang parks the request until the caller's context/deadline gives
	// up, then severs the connection — the hung-worker simulation.
	FaultHang
)

func (f Fault) String() string {
	switch f {
	case FaultNone:
		return "none"
	case FaultReset:
		return "reset"
	case FaultServerError:
		return "5xx"
	case FaultDelay:
		return "delay"
	case FaultPartial:
		return "partial"
	case FaultHang:
		return "hang"
	}
	return fmt.Sprintf("fault(%d)", int(f))
}

// Plan is a named mixture of fault probabilities. Each request draws one
// uniform variate from the seeded stream and walks the thresholds in the
// order reset, 5xx, hang, partial, delay; the probabilities must sum to at
// most 1, with the remainder passing the request through clean.
type Plan struct {
	Name        string
	Description string

	// Per-request fault probabilities, each in [0, 1].
	Reset       float64
	ServerError float64
	Hang        float64
	Partial     float64
	Delay       float64

	// MaxDelay bounds FaultDelay pauses (default 100ms). The actual pause is
	// a deterministic fraction of it, drawn from the same seeded stream.
	MaxDelay time.Duration
}

func (p Plan) validate() error {
	sum := 0.0
	for _, v := range []float64{p.Reset, p.ServerError, p.Hang, p.Partial, p.Delay} {
		if v < 0 || v > 1 {
			return fmt.Errorf("faultify: plan %q has a probability outside [0,1]", p.Name)
		}
		sum += v
	}
	if sum > 1 {
		return fmt.Errorf("faultify: plan %q probabilities sum to %g > 1", p.Name, sum)
	}
	return nil
}

// decide maps decision index i of the stream keyed by seed to a fault and,
// for FaultDelay, a pause. It is a pure function: the whole schedule is fixed
// by (plan, seed).
func (p Plan) decide(seed, i uint64) (Fault, time.Duration) {
	u := unit(splitmix64(seed + i*0x9e3779b97f4a7c15))
	switch {
	case u < p.Reset:
		return FaultReset, 0
	case u < p.Reset+p.ServerError:
		return FaultServerError, 0
	case u < p.Reset+p.ServerError+p.Hang:
		return FaultHang, 0
	case u < p.Reset+p.ServerError+p.Hang+p.Partial:
		return FaultPartial, 0
	case u < p.Reset+p.ServerError+p.Hang+p.Partial+p.Delay:
		max := p.MaxDelay
		if max <= 0 {
			max = 100 * time.Millisecond
		}
		frac := unit(splitmix64((seed ^ 0xd1342543de82ef95) + i*0x9e3779b97f4a7c15))
		return FaultDelay, time.Duration(frac * float64(max))
	}
	return FaultNone, 0
}

// splitmix64 is the standard 64-bit mixer (same constants as internal/sweep's
// per-job seeding); faultify carries its own copy so the package stays
// dependency-free.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// unit maps a 64-bit hash to [0, 1).
func unit(h uint64) float64 { return float64(h>>11) / float64(1<<53) }

// ---- plan registry ----

var (
	planMu    sync.RWMutex
	planOrder []string
	plans     = make(map[string]Plan)
)

// Register adds a fault plan to the registry. Duplicate names panic — a
// programming error, not an input error (same contract as the design,
// topology and policy registries).
func Register(p Plan) {
	if p.Name == "" {
		panic("faultify: plan needs a name")
	}
	if err := p.validate(); err != nil {
		panic(err.Error())
	}
	planMu.Lock()
	defer planMu.Unlock()
	if _, dup := plans[p.Name]; dup {
		panic(fmt.Sprintf("faultify: duplicate plan %q", p.Name))
	}
	plans[p.Name] = p
	planOrder = append(planOrder, p.Name)
}

// Plans lists registered plan names in registration order.
func Plans() []string {
	planMu.RLock()
	defer planMu.RUnlock()
	return append([]string(nil), planOrder...)
}

// Lookup returns a registered plan by name.
func Lookup(name string) (Plan, error) {
	planMu.RLock()
	defer planMu.RUnlock()
	p, ok := plans[name]
	if !ok {
		names := append([]string(nil), planOrder...)
		sort.Strings(names)
		return Plan{}, fmt.Errorf("faultify: unknown plan %q (have %v)", name, names)
	}
	return p, nil
}

func init() {
	Register(Plan{
		Name:        "flaky",
		Description: "transport flaps: resets, 503s and delays",
		Reset:       0.10, ServerError: 0.15, Delay: 0.20,
		MaxDelay: 100 * time.Millisecond,
	})
	Register(Plan{
		Name:        "hang",
		Description: "hung workers: requests parked until the caller's deadline, plus resets",
		Hang:        0.12, Reset: 0.08,
	})
	Register(Plan{
		Name:        "partial",
		Description: "truncated response bodies and 503s",
		Partial:     0.15, ServerError: 0.10,
	})
	Register(Plan{
		Name:        "mayhem",
		Description: "everything at once: resets, 503s, hangs, truncations, delays",
		Reset:       0.08, ServerError: 0.10, Hang: 0.06, Partial: 0.08, Delay: 0.16,
		MaxDelay: 150 * time.Millisecond,
	})
}

// Parse resolves a "<plan>:<seed>" flag value (seed optional, default 1) into
// an Injector — the shape c3dd's -chaos flag accepts.
func Parse(spec string) (*Injector, error) {
	name, seedStr, hasSeed := strings.Cut(spec, ":")
	plan, err := Lookup(name)
	if err != nil {
		return nil, err
	}
	seed := uint64(1)
	if hasSeed {
		seed, err = strconv.ParseUint(seedStr, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("faultify: bad seed in %q: %v", spec, err)
		}
	}
	return NewInjector(plan, seed), nil
}

// Injector is one seeded instance of a plan: a monotone decision counter over
// the plan's deterministic schedule. Safe for concurrent use; concurrent
// requests race for decision indices, but the schedule itself — which indices
// fault, and how — is fixed entirely by (plan, seed).
type Injector struct {
	plan     Plan
	seed     uint64
	n        atomic.Uint64 // decisions drawn
	injected atomic.Uint64 // decisions that faulted
}

// NewInjector builds an injector over a validated plan.
func NewInjector(plan Plan, seed uint64) *Injector {
	if err := plan.validate(); err != nil {
		panic(err.Error())
	}
	return &Injector{plan: plan, seed: seed}
}

// Plan returns the injector's plan, Seed its seed.
func (in *Injector) Plan() Plan   { return in.plan }
func (in *Injector) Seed() uint64 { return in.seed }

// Decisions and Injected report how many fault decisions were drawn and how
// many actually faulted — the observability hooks chaos tests assert on.
func (in *Injector) Decisions() uint64 { return in.n.Load() }
func (in *Injector) Injected() uint64  { return in.injected.Load() }

// next draws the next decision from the schedule.
func (in *Injector) next() (Fault, time.Duration) {
	i := in.n.Add(1) - 1
	f, d := in.plan.decide(in.seed, i)
	if f != FaultNone {
		in.injected.Add(1)
	}
	return f, d
}

// exempt reports whether a request path is never faulted (the capabilities
// handshake; see the package comment).
func exempt(path string) bool { return strings.HasSuffix(path, "/v1/capabilities") }

// Transport wraps an http.RoundTripper with the injector's schedule: splice
// it into an api.Client via api.WithHTTPClient to chaos a dispatch path
// client-side. base nil means http.DefaultTransport.
func (in *Injector) Transport(base http.RoundTripper) http.RoundTripper {
	if base == nil {
		base = http.DefaultTransport
	}
	return &transport{in: in, base: base}
}

type transport struct {
	in   *Injector
	base http.RoundTripper
}

func (t *transport) RoundTrip(req *http.Request) (*http.Response, error) {
	if exempt(req.URL.Path) {
		return t.base.RoundTrip(req)
	}
	fault, pause := t.in.next()
	switch fault {
	case FaultReset:
		return nil, fmt.Errorf("faultify: connection reset (injected)")
	case FaultHang:
		<-req.Context().Done()
		return nil, req.Context().Err()
	case FaultServerError:
		return synthetic503(req), nil
	case FaultDelay:
		select {
		case <-time.After(pause):
		case <-req.Context().Done():
			return nil, req.Context().Err()
		}
	}
	resp, err := t.base.RoundTrip(req)
	if fault == FaultPartial && err == nil && resp.Body != nil {
		resp.Body = &truncatedBody{body: resp.Body, remaining: resp.ContentLength / 2}
	}
	return resp, err
}

// synthetic503 is the response FaultServerError fabricates: the uniform error
// envelope a loaded daemon would answer with, marked transient so clients
// retry it.
func synthetic503(req *http.Request) *http.Response {
	body := `{"error":{"code":"internal","message":"faultify: injected 503"}}` + "\n"
	return &http.Response{
		Status:        "503 Service Unavailable",
		StatusCode:    http.StatusServiceUnavailable,
		Proto:         "HTTP/1.1",
		ProtoMajor:    1,
		ProtoMinor:    1,
		Header:        http.Header{"Content-Type": []string{"application/json"}},
		Body:          io.NopCloser(strings.NewReader(body)),
		ContentLength: int64(len(body)),
		Request:       req,
	}
}

// truncatedBody yields at most remaining bytes, then fails the read — the
// client sees a response cut off mid-body. remaining <= 0 (unknown
// content length) truncates after the first read.
type truncatedBody struct {
	body      io.ReadCloser
	remaining int64
	read      int64
}

func (t *truncatedBody) Read(p []byte) (int, error) {
	if t.remaining > 0 && t.read >= t.remaining {
		return 0, io.ErrUnexpectedEOF
	}
	if t.remaining > 0 && int64(len(p)) > t.remaining-t.read {
		p = p[:t.remaining-t.read]
	}
	n, err := t.body.Read(p)
	t.read += int64(n)
	if t.remaining <= 0 && n > 0 {
		return n, io.ErrUnexpectedEOF
	}
	return n, err
}

func (t *truncatedBody) Close() error { return t.body.Close() }

// Middleware wraps an http.Handler with the injector's schedule: the
// server-side chaos c3dd applies in worker mode, so a whole daemon misbehaves
// the same way on every run with the same seed.
func (in *Injector) Middleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if exempt(r.URL.Path) {
			next.ServeHTTP(w, r)
			return
		}
		fault, pause := in.next()
		switch fault {
		case FaultReset:
			panic(http.ErrAbortHandler)
		case FaultHang:
			// Park until the client gives up (its dispatch deadline), then
			// sever: the canonical hung worker. The body must be drained
			// first: net/http only watches for the peer closing the
			// connection (which cancels r.Context) once the request body has
			// hit EOF, so an unread POST body would park this goroutine —
			// and the connection — forever.
			io.Copy(io.Discard, r.Body)
			<-r.Context().Done()
			panic(http.ErrAbortHandler)
		case FaultServerError:
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusServiceUnavailable)
			io.WriteString(w, `{"error":{"code":"internal","message":"faultify: injected 503"}}`+"\n")
			return
		case FaultDelay:
			io.Copy(io.Discard, r.Body)
			select {
			case <-time.After(pause):
			case <-r.Context().Done():
				panic(http.ErrAbortHandler)
			}
		case FaultPartial:
			// Run the real handler into a buffer, send half of its body, then
			// sever the connection mid-response.
			rec := &recorder{header: make(http.Header), status: http.StatusOK}
			next.ServeHTTP(rec, r)
			for k, v := range rec.header {
				w.Header()[k] = v
			}
			w.Header().Del("Content-Length")
			w.WriteHeader(rec.status)
			body := rec.buf.Bytes()
			w.Write(body[:len(body)/2])
			if f, ok := w.(http.Flusher); ok {
				f.Flush()
			}
			panic(http.ErrAbortHandler)
		}
		next.ServeHTTP(w, r)
	})
}

// recorder captures a handler's response so Middleware can replay a truncated
// prefix of it.
type recorder struct {
	header http.Header
	status int
	buf    bytes.Buffer
}

func (r *recorder) Header() http.Header         { return r.header }
func (r *recorder) WriteHeader(status int)      { r.status = status }
func (r *recorder) Write(p []byte) (int, error) { return r.buf.Write(p) }
