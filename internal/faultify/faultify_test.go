package faultify

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// TestScheduleDeterministic pins the core contract: the same (plan, seed)
// yields the same fault schedule on every replay, and a different seed yields
// a different one.
func TestScheduleDeterministic(t *testing.T) {
	plan, err := Lookup("mayhem")
	if err != nil {
		t.Fatal(err)
	}
	var a, b, c []Fault
	for i := uint64(0); i < 500; i++ {
		fa, _ := plan.decide(7, i)
		fb, _ := plan.decide(7, i)
		fc, _ := plan.decide(8, i)
		a, b, c = append(a, fa), append(b, fb), append(c, fc)
	}
	diff := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision %d differs between replays of the same seed: %v vs %v", i, a[i], b[i])
		}
		if a[i] != c[i] {
			diff++
		}
	}
	if diff == 0 {
		t.Error("seeds 7 and 8 produced identical 500-decision schedules")
	}
	faulted := 0
	for _, f := range a {
		if f != FaultNone {
			faulted++
		}
	}
	// mayhem faults ~48% of requests; 500 draws must land well inside (100, 380).
	if faulted < 100 || faulted > 380 {
		t.Errorf("mayhem faulted %d/500 decisions; schedule looks mis-weighted", faulted)
	}
}

// TestPlanRegistryAndParse covers lookup, the built-in list, and the
// "<plan>:<seed>" flag syntax.
func TestPlanRegistryAndParse(t *testing.T) {
	names := Plans()
	for _, want := range []string{"flaky", "hang", "partial", "mayhem"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Errorf("built-in plan %q not registered (have %v)", want, names)
		}
	}
	if _, err := Lookup("gremlins"); err == nil {
		t.Error("unknown plan looked up successfully")
	}
	in, err := Parse("flaky:42")
	if err != nil || in.Seed() != 42 || in.Plan().Name != "flaky" {
		t.Errorf("Parse(flaky:42) = %+v, %v", in, err)
	}
	if in, err = Parse("hang"); err != nil || in.Seed() != 1 {
		t.Errorf("Parse(hang) should default the seed to 1: %+v, %v", in, err)
	}
	if _, err = Parse("flaky:banana"); err == nil {
		t.Error("bad seed parsed successfully")
	}
	if _, err = Parse("gremlins:1"); err == nil {
		t.Error("unknown plan parsed successfully")
	}
}

func okHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		io.WriteString(w, `{"status":"ok","version":"test","queued":0,"running":0,"finished":0}`+"\n")
	})
}

// TestTransportFaults drives each client-side fault through a real request.
func TestTransportFaults(t *testing.T) {
	ts := httptest.NewServer(okHandler())
	t.Cleanup(ts.Close)

	get := func(in *Injector, ctx context.Context) (*http.Response, error) {
		cl := &http.Client{Transport: in.Transport(nil)}
		req, _ := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL+"/healthz", nil)
		return cl.Do(req)
	}

	// Reset: transport error before a response exists.
	if _, err := get(NewInjector(Plan{Name: "t", Reset: 1}, 1), t.Context()); err == nil || !strings.Contains(err.Error(), "connection reset") {
		t.Errorf("reset fault: err = %v, want injected connection reset", err)
	}

	// 5xx: synthetic 503 carrying the uniform envelope.
	resp, err := get(NewInjector(Plan{Name: "t", ServerError: 1}, 1), t.Context())
	if err != nil || resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("5xx fault: %v %v", resp, err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), `"code":"internal"`) {
		t.Errorf("5xx body = %q, want the error envelope", body)
	}

	// Hang: blocks until the context deadline, then surfaces it.
	ctx, cancel := context.WithTimeout(t.Context(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	if _, err := get(NewInjector(Plan{Name: "t", Hang: 1}, 1), ctx); err == nil {
		t.Error("hang fault returned a response")
	}
	if d := time.Since(start); d < 40*time.Millisecond || d > 2*time.Second {
		t.Errorf("hang released after %v, want ~the 50ms deadline", d)
	}

	// Partial: response arrives but the body read fails.
	resp, err = get(NewInjector(Plan{Name: "t", Partial: 1}, 1), t.Context())
	if err != nil {
		t.Fatalf("partial fault should deliver a response: %v", err)
	}
	_, err = io.ReadAll(resp.Body)
	resp.Body.Close()
	if err == nil {
		t.Error("partial fault delivered the full body without a read error")
	}

	// Exemption: the capabilities handshake is never faulted.
	in := NewInjector(Plan{Name: "t", Reset: 1}, 1)
	cl := &http.Client{Transport: in.Transport(nil)}
	if resp, err := cl.Get(ts.URL + "/v1/capabilities"); err != nil {
		t.Errorf("capabilities request faulted: %v", err)
	} else {
		resp.Body.Close()
	}
	if in.Decisions() != 0 {
		t.Errorf("capabilities request consumed %d fault decisions, want 0", in.Decisions())
	}
}

// TestMiddlewareFaults drives the server-side faults end to end over real
// connections (httptest), where aborts actually sever TCP streams.
func TestMiddlewareFaults(t *testing.T) {
	serve := func(in *Injector) *httptest.Server {
		ts := httptest.NewServer(in.Middleware(okHandler()))
		t.Cleanup(ts.Close)
		return ts
	}

	// Reset: the client's read fails.
	if _, err := http.Get(serve(NewInjector(Plan{Name: "t", Reset: 1}, 1)).URL); err == nil {
		t.Error("reset middleware answered normally")
	}

	// 5xx: envelope served without reaching the inner handler.
	resp, err := http.Get(serve(NewInjector(Plan{Name: "t", ServerError: 1}, 1)).URL)
	if err != nil || resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("middleware 5xx: %v %v", resp, err)
	}
	resp.Body.Close()

	// Partial: headers and a truncated body, then a severed stream.
	resp, err = http.Get(serve(NewInjector(Plan{Name: "t", Partial: 1}, 1)).URL)
	if err != nil {
		t.Fatalf("partial middleware should start a response: %v", err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err == nil && len(body) >= len(`{"status":"ok"`)+40 {
		t.Errorf("partial middleware delivered a complete body: %q", body)
	}

	// Hang: released (and severed) when the client deadline fires.
	cl := &http.Client{Timeout: 50 * time.Millisecond}
	start := time.Now()
	if _, err := cl.Get(serve(NewInjector(Plan{Name: "t", Hang: 1}, 1)).URL); err == nil {
		t.Error("hang middleware answered within the deadline")
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Errorf("hang middleware released after %v", d)
	}

	// Counters: injected faults are observable.
	in := NewInjector(Plan{Name: "t", ServerError: 1}, 1)
	ts := serve(in)
	for i := 0; i < 3; i++ {
		if resp, err := http.Get(ts.URL); err == nil {
			resp.Body.Close()
		}
	}
	if in.Decisions() != 3 || in.Injected() != 3 {
		t.Errorf("counters = %d decisions / %d injected, want 3/3", in.Decisions(), in.Injected())
	}
}
