// Package benchfmt parses the output of `go test -bench` into structured
// records, so the repository can track its performance trajectory as data
// instead of log files. cmd/benchjson pipes a benchmark run through Parse and
// writes a BENCH_<git-sha>.json artefact per commit; CI uploads it, and
// comparing two artefacts shows exactly which benchmark moved, by how much,
// and in which dimension (time, allocations, or a custom metric such as
// states or accesses/s).
package benchfmt

import (
	"bufio"
	"fmt"
	"io"
	"regexp"
	"strconv"
	"strings"
)

// Result is one benchmark line, e.g.
//
//	BenchmarkFoo-8  100  11111 ns/op  222 B/op  3 allocs/op  45.6 states
//
// The -<procs> suffix is stripped from Name. Units beyond the three standard
// ones land in Metrics (b.ReportMetric output).
type Result struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op"`
	AllocsPerOp float64            `json:"allocs_per_op"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

var procSuffix = regexp.MustCompile(`-\d+$`)

// Parse reads benchmark lines from r, ignoring everything that is not a
// benchmark result (package headers, PASS/ok lines, test chatter). It
// returns the results in input order.
func Parse(r io.Reader) ([]Result, error) {
	var out []Result
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		res, ok, err := parseLine(line)
		if err != nil {
			return nil, err
		}
		if ok {
			out = append(out, res)
		}
	}
	return out, sc.Err()
}

// parseLine parses one line, reporting ok=false for non-benchmark lines and
// an error only for lines that look like benchmark results but do not parse.
func parseLine(line string) (Result, bool, error) {
	fields := strings.Fields(line)
	if len(fields) < 2 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Result{}, false, nil
	}
	// The second field must be the iteration count; "BenchmarkX ... FAIL"
	// and similar chatter is skipped rather than rejected.
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false, nil
	}
	res := Result{
		Name:       procSuffix.ReplaceAllString(fields[0], ""),
		Iterations: iters,
	}
	// The remainder is (value, unit) pairs.
	if (len(fields)-2)%2 != 0 {
		return Result{}, false, fmt.Errorf("benchfmt: odd value/unit fields in %q", line)
	}
	for i := 2; i < len(fields); i += 2 {
		value, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false, fmt.Errorf("benchfmt: bad value %q in %q", fields[i], line)
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			res.NsPerOp = value
		case "B/op":
			res.BytesPerOp = value
		case "allocs/op":
			res.AllocsPerOp = value
		default:
			if res.Metrics == nil {
				res.Metrics = make(map[string]float64)
			}
			res.Metrics[unit] = value
		}
	}
	return res, true, nil
}
