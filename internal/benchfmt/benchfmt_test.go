package benchfmt

import (
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: c3d
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkProtocolModelCheck 	       5	   3085418 ns/op	      4012 states	 1252785 B/op	   10971 allocs/op
BenchmarkProtocolModelCheckParallel/p8-8         	      10	  51234567 ns/op	    250000 states	 100 B/op	 3 allocs/op
BenchmarkMachineSimulation-16 	       3	  28318501 ns/op	   1412540 accesses/s	   38106 B/op	     115 allocs/op
PASS
ok  	c3d	0.126s
`

func TestParse(t *testing.T) {
	results, err := Parse(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("parsed %d results, want 3: %+v", len(results), results)
	}

	first := results[0]
	if first.Name != "BenchmarkProtocolModelCheck" || first.Iterations != 5 {
		t.Errorf("first = %+v", first)
	}
	if first.NsPerOp != 3085418 || first.AllocsPerOp != 10971 || first.BytesPerOp != 1252785 {
		t.Errorf("first measurements = %+v", first)
	}
	if first.Metrics["states"] != 4012 {
		t.Errorf("states metric = %v, want 4012", first.Metrics["states"])
	}

	// Sub-benchmark names keep their path; the -procs suffix is stripped.
	if got := results[1].Name; got != "BenchmarkProtocolModelCheckParallel/p8" {
		t.Errorf("sub-benchmark name = %q", got)
	}
	if got := results[2].Name; got != "BenchmarkMachineSimulation" {
		t.Errorf("name with procs suffix = %q", got)
	}
	if results[2].Metrics["accesses/s"] != 1412540 {
		t.Errorf("accesses/s = %v", results[2].Metrics["accesses/s"])
	}
}

func TestParseSkipsNonBenchmarkLines(t *testing.T) {
	results, err := Parse(strings.NewReader("BenchmarkBroken FAIL\nrandom text\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 0 {
		t.Errorf("parsed %d results from chatter, want 0", len(results))
	}
}

func TestParseRejectsMalformedMeasurements(t *testing.T) {
	if _, err := Parse(strings.NewReader("BenchmarkX 10 notanumber ns/op\n")); err == nil {
		t.Error("malformed value should be an error")
	}
	if _, err := Parse(strings.NewReader("BenchmarkX 10 5 ns/op trailing\n")); err == nil {
		t.Error("odd field count should be an error")
	}
}
