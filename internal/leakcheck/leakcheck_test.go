package leakcheck

import (
	"strings"
	"testing"
	"time"
)

// TestCheckDetectsModuleGoroutine pins both directions: a parked goroutine
// created by module code is reported with its stack, and releasing it
// brings Check back to clean — including the asynchronous case where the
// goroutine unwinds during the grace period.
func TestCheckDetectsModuleGoroutine(t *testing.T) {
	release := make(chan struct{})
	parked := make(chan struct{})
	go func() {
		close(parked)
		<-release
	}()
	<-parked

	leaked := Check(100 * time.Millisecond)
	if leaked == "" {
		t.Fatal("Check missed a parked module goroutine")
	}
	if !strings.Contains(leaked, "c3d/internal/leakcheck") {
		t.Fatalf("leak report does not attribute the goroutine to module code:\n%s", leaked)
	}

	// Release concurrently with the check: the grace-period retry loop must
	// observe the goroutine exiting.
	go func() {
		time.Sleep(20 * time.Millisecond)
		close(release)
	}()
	if leaked := Check(5 * time.Second); leaked != "" {
		t.Fatalf("Check still reports a leak after release:\n%s", leaked)
	}
}
