// Package leakcheck asserts, at the end of a test binary's run, that no
// goroutine spawned by this module's code is still alive — a
// snapshot-and-compare take on goleak without the dependency.
//
// The drain/Close guarantees introduced with the fault-tolerant campaign
// work (server.Drain, Coordinator.Drain, the worker-bench reaper) were
// originally checked by one dedicated test; wiring this package into a
// suite's TestMain checks them on every test run instead: any test that
// leaks a scheduler worker, a dispatch goroutine or a fault-injection timer
// fails the whole binary with the offending stacks printed.
//
// Usage, once per test package:
//
//	func TestMain(m *testing.M) { leakcheck.Main(m) }
//
// Detection is by origin, not by count: after m.Run, every goroutine whose
// stack or creator mentions a module package ("c3d/...") must exit within a
// grace period. Runtime, testing and pure-stdlib goroutines (e.g. an idle
// HTTP keep-alive conn owned by a shared transport) are not attributed to
// the module and are ignored, which keeps the check immune to stdlib
// background machinery while still catching module goroutines parked inside
// stdlib frames — the creator line carries the module path.
package leakcheck

import (
	"fmt"
	"net/http"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"
)

// modulePrefix attributes goroutines to this repo: every package path of
// the module starts with it, and it appears in both the frame symbols
// ("c3d/internal/server.(*scheduler).work") and "created by" lines.
const modulePrefix = "c3d/"

// Main runs the package's tests, then fails the binary if module-owned
// goroutines survive the grace period. It exits the process and therefore
// must be the last call in TestMain.
func Main(m *testing.M) {
	code := m.Run()
	if code == 0 {
		if leaked := Check(5 * time.Second); leaked != "" {
			fmt.Fprintf(os.Stderr, "leakcheck: goroutines leaked by module code after all tests passed:\n\n%s\n", leaked)
			code = 1
		}
	}
	os.Exit(code)
}

// Check polls until no module-owned goroutine remains or the deadline
// passes, and returns the offending stacks ("" when clean). Goroutines
// finishing asynchronously (a Close that signals before its workers fully
// unwind) get the grace period to disappear.
func Check(grace time.Duration) string {
	// Shared transports keep idle connections whose readLoop goroutines were
	// created by module test code via the client; release them first so a
	// kept-alive connection is not mistaken for a leak.
	http.DefaultClient.CloseIdleConnections()
	if t, ok := http.DefaultTransport.(*http.Transport); ok {
		t.CloseIdleConnections()
	}
	deadline := time.Now().Add(grace)
	for {
		leaked := moduleGoroutines()
		if len(leaked) == 0 {
			return ""
		}
		if time.Now().After(deadline) {
			return strings.Join(leaked, "\n\n")
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// moduleGoroutines snapshots all goroutine stacks and keeps those
// attributable to module code, excluding the calling goroutine.
func moduleGoroutines() []string {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, 2*len(buf))
	}
	var leaked []string
	for i, g := range strings.Split(string(buf), "\n\n") {
		if i == 0 {
			// The first record is this goroutine, running the check.
			continue
		}
		if strings.Contains(g, modulePrefix) {
			leaked = append(leaked, g)
		}
	}
	return leaked
}
