package mc

import (
	"fmt"
	"sync"
	"testing"
)

func TestVisitedSetInsertAndContains(t *testing.T) {
	v := newVisitedSet()
	states := []string{"", "a", "b", "ab", "ba", "a", ""}
	wantNew := []bool{true, true, true, true, true, false, false}
	for i, s := range states {
		if got := v.insert(s); got != wantNew[i] {
			t.Errorf("insert(%q) #%d = %v, want %v", s, i, got, wantNew[i])
		}
	}
	if v.size() != 5 {
		t.Errorf("size = %d, want 5", v.size())
	}
	for _, s := range []string{"", "a", "b", "ab", "ba"} {
		if !v.contains(s) {
			t.Errorf("contains(%q) = false after insert", s)
		}
	}
	if v.contains("missing") {
		t.Error("contains reported a state that was never inserted")
	}
}

// TestVisitedSetGrowth pushes every shard through several table growths and
// arena reallocations, then verifies membership survived the rehashes.
func TestVisitedSetGrowth(t *testing.T) {
	v := newVisitedSet()
	const n = 50_000
	for i := 0; i < n; i++ {
		s := fmt.Sprintf("state-%d-with-some-padding-to-fill-the-arena", i)
		if !v.insert(s) {
			t.Fatalf("insert(%q) reported duplicate on first insert", s)
		}
	}
	if v.size() != n {
		t.Fatalf("size = %d, want %d", v.size(), n)
	}
	for i := 0; i < n; i++ {
		s := fmt.Sprintf("state-%d-with-some-padding-to-fill-the-arena", i)
		if v.insert(s) {
			t.Fatalf("insert(%q) admitted a duplicate after growth", s)
		}
	}
}

// TestVisitedSetConcurrentInserts races many goroutines over an overlapping
// key space: every key must be admitted exactly once in total.
func TestVisitedSetConcurrentInserts(t *testing.T) {
	v := newVisitedSet()
	const (
		workers = 8
		keys    = 10_000
	)
	admitted := make([]int, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < keys; i++ {
				if v.insert(fmt.Sprintf("key-%d", i)) {
					admitted[w]++
				}
			}
		}(w)
	}
	wg.Wait()
	total := 0
	for _, n := range admitted {
		total += n
	}
	if total != keys {
		t.Errorf("%d admissions across workers, want exactly %d", total, keys)
	}
	if v.size() != keys {
		t.Errorf("size = %d, want %d", v.size(), keys)
	}
}

func TestHashStateIsDeterministicAndSpreads(t *testing.T) {
	if hashState("abc") != hashState("abc") {
		t.Fatal("hashState is not deterministic")
	}
	// All 64 shards should be populated by a modest key set if the top bits
	// mix properly.
	seen := map[uint64]bool{}
	for i := 0; i < 4096; i++ {
		seen[hashState(fmt.Sprintf("k%d", i))>>(64-shardBits)] = true
	}
	if len(seen) != numShards {
		t.Errorf("4096 keys touched only %d/%d shards", len(seen), numShards)
	}
}
