//go:build race

package mc

// raceEnabled reports whether the race detector is active; allocation-budget
// tests skip under it (instrumentation allocates on the model checker's
// behalf).
const raceEnabled = true
