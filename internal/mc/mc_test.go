package mc

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"c3d/internal/core"
)

// chainModel is a trivial model: states "0" .. "n", each with a single
// successor, optionally with a violation or deadlock planted along the way.
type chainModel struct {
	length      int
	badState    int // Check fails at this state (-1 = never)
	badTrans    int // Successors fails leaving this state (-1 = never)
	deadlockAt  int // state with no successors that is NOT quiescent (-1 = never)
	quiescentAt int // terminal state that IS quiescent (defaults to the last)
}

func (c chainModel) Name() string      { return "chain" }
func (c chainModel) Initial() []string { return []string{"0"} }

func (c chainModel) parse(s string) int {
	var i int
	fmt.Sscanf(s, "%d", &i)
	return i
}

func (c chainModel) Successors(s string) ([]string, error) {
	i := c.parse(s)
	if i == c.badTrans {
		return nil, errors.New("planted transition failure")
	}
	if i >= c.length || i == c.deadlockAt {
		return nil, nil
	}
	return []string{fmt.Sprintf("%d", i+1)}, nil
}

func (c chainModel) Check(s string) error {
	if c.parse(s) == c.badState {
		return errors.New("planted invariant failure")
	}
	return nil
}

func (c chainModel) Quiescent(s string) bool {
	i := c.parse(s)
	return i != c.deadlockAt && (i >= c.length)
}

func cleanChain(n int) chainModel {
	return chainModel{length: n, badState: -1, badTrans: -1, deadlockAt: -1}
}

func TestRunCleanChain(t *testing.T) {
	r := Run(context.Background(), cleanChain(10), Options{})
	if !r.OK() {
		t.Fatalf("clean chain reported violations: %v", r)
	}
	if r.StatesExplored != 11 {
		t.Errorf("StatesExplored = %d, want 11", r.StatesExplored)
	}
	if r.MaxDepthReached != 10 {
		t.Errorf("MaxDepthReached = %d, want 10", r.MaxDepthReached)
	}
	if r.QuiescentStates != 1 {
		t.Errorf("QuiescentStates = %d, want 1", r.QuiescentStates)
	}
	if !strings.Contains(r.String(), "PASS") {
		t.Errorf("report should say PASS: %s", r)
	}
}

func TestRunDetectsInvariantViolation(t *testing.T) {
	m := cleanChain(10)
	m.badState = 5
	r := Run(context.Background(), m, Options{})
	if r.Passed() {
		t.Fatal("planted invariant violation not detected")
	}
	v := r.Violations[0]
	if v.Kind != "invariant" || v.Depth != 5 {
		t.Errorf("violation = %+v; want invariant at depth 5", v)
	}
	if !strings.Contains(r.String(), "FAIL") {
		t.Errorf("report should say FAIL: %s", r)
	}
}

func TestRunDetectsTransitionViolation(t *testing.T) {
	m := cleanChain(10)
	m.badTrans = 3
	r := Run(context.Background(), m, Options{})
	if r.Passed() || r.Violations[0].Kind != "transition" {
		t.Fatalf("planted transition violation not detected: %v", r)
	}
}

func TestRunDetectsDeadlock(t *testing.T) {
	m := cleanChain(10)
	m.deadlockAt = 7
	r := Run(context.Background(), m, Options{})
	if r.Passed() || r.Violations[0].Kind != "deadlock" {
		t.Fatalf("planted deadlock not detected: %v", r)
	}
	if r.Violations[0].Depth != 7 {
		t.Errorf("deadlock depth = %d, want 7", r.Violations[0].Depth)
	}
}

func TestRunRespectsMaxStates(t *testing.T) {
	r := Run(context.Background(), cleanChain(1000), Options{MaxStates: 10})
	if !r.Truncated {
		t.Error("search should report truncation")
	}
	if r.OK() {
		t.Error("a truncated run must not claim OK")
	}
	if !r.Passed() {
		t.Error("a truncated run without violations should still pass")
	}
	if r.StatesExplored > 10 {
		t.Errorf("explored %d states, want <= 10", r.StatesExplored)
	}
}

func TestRunRespectsMaxDepth(t *testing.T) {
	r := Run(context.Background(), cleanChain(1000), Options{MaxDepth: 5})
	if !r.Truncated {
		t.Error("depth-bounded search should report truncation")
	}
	if r.MaxDepthReached > 5 {
		t.Errorf("MaxDepthReached = %d, want <= 5", r.MaxDepthReached)
	}
}

func TestRunProgressCallback(t *testing.T) {
	called := 0
	// The callback fires every 100k states by default; a long chain triggers
	// it.
	r := Run(context.Background(), cleanChain(200_001), Options{Progress: func(int) { called++ }})
	if !r.Passed() {
		t.Fatalf("unexpected violations: %v", r)
	}
	if called == 0 {
		t.Error("progress callback never invoked")
	}
}

func TestRunProgressInterval(t *testing.T) {
	var ticks []int
	r := Run(context.Background(), cleanChain(100), Options{
		ProgressInterval: 25,
		Progress:         func(n int) { ticks = append(ticks, n) },
	})
	if !r.OK() {
		t.Fatalf("unexpected violations: %v", r)
	}
	// 101 states at interval 25: crossings at 25, 50, 75, 100, plus the
	// final tick.
	if len(ticks) < 4 {
		t.Fatalf("progress ticks = %v; want at least one per 25 states", ticks)
	}
	if last := ticks[len(ticks)-1]; last != r.StatesExplored {
		t.Errorf("final progress tick reported %d states, want %d", last, r.StatesExplored)
	}
}

func TestRunProgressFiresAtCompletion(t *testing.T) {
	// A search far below the interval must still emit exactly one final
	// tick with the total (the old engine only fired on exact multiples of
	// 100k and never at completion).
	var ticks []int
	r := Run(context.Background(), cleanChain(10), Options{Progress: func(n int) { ticks = append(ticks, n) }})
	if len(ticks) != 1 || ticks[0] != r.StatesExplored {
		t.Errorf("ticks = %v; want exactly [%d]", ticks, r.StatesExplored)
	}
}

// The headline verification: the C3D protocol model explored exhaustively for
// small configurations, as in §IV-C of the paper. Two sockets with one load
// and one store per core is small enough for an ordinary test run; the
// 3-socket configuration is exercised by the verification experiment and the
// benchmark.
func TestC3DProtocolTwoSockets(t *testing.T) {
	m := core.NewProtocolModel(core.ProtocolConfig{Sockets: 2, LoadsPerCore: 1, StoresPerCore: 1})
	r := Run(context.Background(), m, Options{})
	if !r.OK() {
		t.Fatalf("C3D protocol verification failed:\n%s", r)
	}
	if r.StatesExplored < 1000 {
		t.Errorf("explored only %d states; the model looks under-constrained", r.StatesExplored)
	}
	if r.QuiescentStates == 0 {
		t.Error("no terminal quiescent states reached")
	}
}

func TestC3DFullDirVariantTwoSockets(t *testing.T) {
	m := core.NewProtocolModel(core.ProtocolConfig{Sockets: 2, LoadsPerCore: 1, StoresPerCore: 1, TrackDRAMCache: true})
	r := Run(context.Background(), m, Options{})
	if !r.OK() {
		t.Fatalf("c3d-full-dir protocol verification failed:\n%s", r)
	}
}

func TestC3DProtocolThreeSocketsBounded(t *testing.T) {
	if testing.Short() {
		t.Skip("3-socket exploration is slow; run without -short")
	}
	m := core.NewProtocolModel(core.ProtocolConfig{Sockets: 3, LoadsPerCore: 1, StoresPerCore: 1})
	// Bound the search so the unit test stays fast; the c3dcheck command runs
	// it exhaustively.
	r := Run(context.Background(), m, Options{MaxStates: 60_000})
	if !r.Passed() {
		t.Fatalf("C3D protocol verification failed:\n%s", r)
	}
}

// --- parallel determinism ---

// gridModel is a dedup-heavy toy model: states are cells of an n×n grid
// (encoded fixed-width so lexicographic order equals coordinate order),
// reachable by moving right or down. Every interior cell is reachable along
// many paths, so parallel workers race on visited-set inserts constantly —
// exactly the behaviour the determinism contract must survive. Violations of
// every kind can be planted per cell.
type gridModel struct {
	n        int
	badCheck map[string]bool // Check fails
	badTrans map[string]bool // Successors fails
	deadlock map[string]bool // terminal but not quiescent
}

func newGrid(n int) *gridModel {
	return &gridModel{
		n:        n,
		badCheck: map[string]bool{},
		badTrans: map[string]bool{},
		deadlock: map[string]bool{},
	}
}

func gridState(x, y int) string { return fmt.Sprintf("%03d,%03d", x, y) }

func (g *gridModel) Name() string      { return "grid" }
func (g *gridModel) Initial() []string { return []string{gridState(0, 0)} }

func (g *gridModel) parse(s string) (x, y int) {
	fmt.Sscanf(s, "%d,%d", &x, &y)
	return
}

func (g *gridModel) Successors(s string) ([]string, error) {
	if g.badTrans[s] {
		return nil, errors.New("planted transition failure")
	}
	if g.deadlock[s] {
		return nil, nil
	}
	x, y := g.parse(s)
	var out []string
	if x+1 < g.n {
		out = append(out, gridState(x+1, y))
	}
	if y+1 < g.n {
		out = append(out, gridState(x, y+1))
	}
	return out, nil
}

func (g *gridModel) Check(s string) error {
	if g.badCheck[s] {
		return errors.New("planted invariant failure")
	}
	return nil
}

func (g *gridModel) Quiescent(s string) bool {
	return s == gridState(g.n-1, g.n-1) && !g.deadlock[s]
}

// reportJSON is the byte-comparable form of a report (Elapsed is excluded
// from the JSON encoding by design).
func reportJSON(t *testing.T, r Report) []byte {
	t.Helper()
	b, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// requireIdenticalAcrossParallelism runs the model at parallelism 1, 4 and 8
// and fails unless the serialised reports are byte-identical. It returns the
// serial report.
func requireIdenticalAcrossParallelism(t *testing.T, m Model, opts Options) Report {
	t.Helper()
	opts.Parallelism = 1
	serial := Run(context.Background(), m, opts)
	want := reportJSON(t, serial)
	for _, p := range []int{4, 8} {
		opts.Parallelism = p
		got := reportJSON(t, Run(context.Background(), m, opts))
		if !bytes.Equal(want, got) {
			t.Fatalf("report differs between parallelism 1 and %d:\n  serial: %s\nparallel: %s", p, want, got)
		}
	}
	return serial
}

func TestParallelDeterminismCleanGrid(t *testing.T) {
	n := 40
	r := requireIdenticalAcrossParallelism(t, newGrid(n), Options{})
	if !r.OK() {
		t.Fatalf("clean grid reported violations: %v", r)
	}
	if want := n * n; r.StatesExplored != want {
		t.Errorf("StatesExplored = %d, want %d", r.StatesExplored, want)
	}
	if want := 2 * n * (n - 1); r.TransitionsSeen != want {
		t.Errorf("TransitionsSeen = %d, want %d", r.TransitionsSeen, want)
	}
	if want := 2 * (n - 1); r.MaxDepthReached != want {
		t.Errorf("MaxDepthReached = %d, want %d", r.MaxDepthReached, want)
	}
	if r.QuiescentStates != 1 {
		t.Errorf("QuiescentStates = %d, want 1", r.QuiescentStates)
	}
}

func TestParallelDeterminismInvariantViolation(t *testing.T) {
	// Two invariant violations at the same depth: the report must name the
	// lexicographically smaller state regardless of which worker found its
	// violation first.
	g := newGrid(20)
	g.badCheck[gridState(3, 2)] = true
	g.badCheck[gridState(2, 3)] = true
	r := requireIdenticalAcrossParallelism(t, g, Options{})
	if r.Passed() {
		t.Fatal("planted invariant violations not detected")
	}
	v := r.Violations[0]
	if v.Kind != "invariant" || v.Depth != 5 || v.State != gridState(2, 3) {
		t.Errorf("violation = %+v; want invariant at depth 5 in state %q", v, gridState(2, 3))
	}
}

func TestParallelDeterminismTransitionViolation(t *testing.T) {
	g := newGrid(20)
	g.badTrans[gridState(4, 4)] = true
	r := requireIdenticalAcrossParallelism(t, g, Options{})
	if r.Passed() || r.Violations[0].Kind != "transition" || r.Violations[0].Depth != 8 {
		t.Fatalf("planted transition violation not detected deterministically: %v", r)
	}
}

func TestParallelDeterminismDeadlock(t *testing.T) {
	g := newGrid(20)
	g.deadlock[gridState(5, 1)] = true
	r := requireIdenticalAcrossParallelism(t, g, Options{})
	if r.Passed() || r.Violations[0].Kind != "deadlock" || r.Violations[0].Depth != 6 {
		t.Fatalf("planted deadlock not detected deterministically: %v", r)
	}
}

func TestParallelDeterminismMixedKindsSameDepth(t *testing.T) {
	// A deadlock, a transition failure and an invariant failure all at depth
	// 5: the smallest state wins, independent of kind.
	g := newGrid(20)
	g.badCheck[gridState(2, 3)] = true
	g.badTrans[gridState(3, 2)] = true
	g.deadlock[gridState(1, 4)] = true
	r := requireIdenticalAcrossParallelism(t, g, Options{})
	if r.Passed() {
		t.Fatal("planted violations not detected")
	}
	if v := r.Violations[0]; v.Kind != "deadlock" || v.State != gridState(1, 4) {
		t.Errorf("violation = %+v; want the deadlock in state %q (lexicographically smallest)", v, gridState(1, 4))
	}
}

func TestParallelDeterminismShallowestLevelWins(t *testing.T) {
	// A violation at depth 4 must shadow one at depth 6 even though both are
	// discovered during the same run.
	g := newGrid(20)
	g.badCheck[gridState(2, 2)] = true
	g.badCheck[gridState(0, 6)] = true
	r := requireIdenticalAcrossParallelism(t, g, Options{})
	if r.Passed() || len(r.Violations) != 1 {
		t.Fatalf("want exactly one violation, got %v", r)
	}
	if v := r.Violations[0]; v.Depth != 4 || v.State != gridState(2, 2) {
		t.Errorf("violation = %+v; want depth 4 state %q", v, gridState(2, 2))
	}
}

func TestParallelDeterminismTruncation(t *testing.T) {
	r := requireIdenticalAcrossParallelism(t, newGrid(40), Options{MaxStates: 500})
	if !r.Truncated || r.StatesExplored > 500 {
		t.Errorf("truncated run explored %d states (truncated=%v); want <= 500", r.StatesExplored, r.Truncated)
	}
	r = requireIdenticalAcrossParallelism(t, newGrid(40), Options{MaxDepth: 9})
	if !r.Truncated || r.MaxDepthReached > 9 {
		t.Errorf("depth-bounded run reached depth %d (truncated=%v); want <= 9", r.MaxDepthReached, r.Truncated)
	}
}

func TestParallelDeterminismC3DProtocol(t *testing.T) {
	m := core.NewProtocolModel(core.ProtocolConfig{Sockets: 2, LoadsPerCore: 1, StoresPerCore: 1})
	r := requireIdenticalAcrossParallelism(t, m, Options{})
	if !r.OK() {
		t.Fatalf("C3D protocol verification failed:\n%s", r)
	}
	m = core.NewProtocolModel(core.ProtocolConfig{Sockets: 2, LoadsPerCore: 1, StoresPerCore: 1, TrackDRAMCache: true})
	if r := requireIdenticalAcrossParallelism(t, m, Options{}); !r.OK() {
		t.Fatalf("c3d-full-dir verification failed:\n%s", r)
	}
}

// noAppend hides a model's SuccessorsAppend so Run takes the Successors
// fallback path.
type noAppend struct{ Model }

func TestAppendFastPathMatchesFallback(t *testing.T) {
	mk := func() Model {
		return core.NewProtocolModel(core.ProtocolConfig{Sockets: 2, LoadsPerCore: 1, StoresPerCore: 1})
	}
	fast := reportJSON(t, Run(context.Background(), mk(), Options{Parallelism: 2}))
	slow := reportJSON(t, Run(context.Background(), noAppend{mk()}, Options{Parallelism: 2}))
	if !bytes.Equal(fast, slow) {
		t.Fatalf("SuccessorsAppend fast path and Successors fallback disagree:\nfast: %s\nslow: %s", fast, slow)
	}
}

// TestModelCheckAllocationGuard pins the allocation budget of the 2-socket
// exhaustive run. The pre-parallel engine spent ~91k allocations on it; the
// arena-interned visited set plus the pooled protocol scratch bring that
// under ~11k (roughly one allocation per transition, for the successor
// string). The bound leaves headroom while still failing if either reuse
// path regresses to per-state allocation.
func TestModelCheckAllocationGuard(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; the budget only holds in normal builds")
	}
	run := func() {
		m := core.NewProtocolModel(core.ProtocolConfig{Sockets: 2, LoadsPerCore: 1, StoresPerCore: 1})
		if r := Run(context.Background(), m, Options{Parallelism: 1}); !r.OK() {
			t.Errorf("verification failed: %s", r)
		}
	}
	run() // warm the scratch pools
	if avg := testing.AllocsPerRun(3, run); avg > 18000 {
		t.Errorf("2-socket exhaustive run allocates %.0f objects; want <= 18000 (was ~91k before the parallel engine)", avg)
	}
}

func TestReportJSONExcludesElapsed(t *testing.T) {
	b := reportJSON(t, Report{Model: "m", Elapsed: 123 * time.Second})
	if bytes.Contains(b, []byte("123")) || bytes.Contains(b, []byte("lapsed")) {
		t.Errorf("report JSON must exclude wall-clock time, got %s", b)
	}
}

func TestViolationString(t *testing.T) {
	v := Violation{Kind: "deadlock", State: "s", Depth: 3}
	if !strings.Contains(v.String(), "deadlock") {
		t.Errorf("Violation.String() = %q", v.String())
	}
	v = Violation{Kind: "invariant", State: "s", Depth: 1, Err: errors.New("boom")}
	if !strings.Contains(v.String(), "boom") {
		t.Errorf("Violation.String() = %q", v.String())
	}
}

// TestRunCancelled checks a cancelled context aborts the search with a
// partial, Interrupted-marked report instead of exploring to completion.
func TestRunCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	r := Run(ctx, cleanChain(1_000_000), Options{Parallelism: 2})
	if !r.Interrupted {
		t.Fatal("report not marked interrupted")
	}
	if r.OK() {
		t.Fatal("interrupted report must not be OK")
	}
	if r.StatesExplored >= 1_000_000 {
		t.Fatalf("explored %d states despite pre-cancelled context", r.StatesExplored)
	}
}
