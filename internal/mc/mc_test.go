package mc

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"c3d/internal/core"
)

// chainModel is a trivial model: states "0" .. "n", each with a single
// successor, optionally with a violation or deadlock planted along the way.
type chainModel struct {
	length      int
	badState    int // Check fails at this state (-1 = never)
	badTrans    int // Successors fails leaving this state (-1 = never)
	deadlockAt  int // state with no successors that is NOT quiescent (-1 = never)
	quiescentAt int // terminal state that IS quiescent (defaults to the last)
}

func (c chainModel) Name() string      { return "chain" }
func (c chainModel) Initial() []string { return []string{"0"} }

func (c chainModel) parse(s string) int {
	var i int
	fmt.Sscanf(s, "%d", &i)
	return i
}

func (c chainModel) Successors(s string) ([]string, error) {
	i := c.parse(s)
	if i == c.badTrans {
		return nil, errors.New("planted transition failure")
	}
	if i >= c.length || i == c.deadlockAt {
		return nil, nil
	}
	return []string{fmt.Sprintf("%d", i+1)}, nil
}

func (c chainModel) Check(s string) error {
	if c.parse(s) == c.badState {
		return errors.New("planted invariant failure")
	}
	return nil
}

func (c chainModel) Quiescent(s string) bool {
	i := c.parse(s)
	return i != c.deadlockAt && (i >= c.length)
}

func cleanChain(n int) chainModel {
	return chainModel{length: n, badState: -1, badTrans: -1, deadlockAt: -1}
}

func TestRunCleanChain(t *testing.T) {
	r := Run(cleanChain(10), Options{})
	if !r.OK() {
		t.Fatalf("clean chain reported violations: %v", r)
	}
	if r.StatesExplored != 11 {
		t.Errorf("StatesExplored = %d, want 11", r.StatesExplored)
	}
	if r.MaxDepthReached != 10 {
		t.Errorf("MaxDepthReached = %d, want 10", r.MaxDepthReached)
	}
	if r.QuiescentStates != 1 {
		t.Errorf("QuiescentStates = %d, want 1", r.QuiescentStates)
	}
	if !strings.Contains(r.String(), "PASS") {
		t.Errorf("report should say PASS: %s", r)
	}
}

func TestRunDetectsInvariantViolation(t *testing.T) {
	m := cleanChain(10)
	m.badState = 5
	r := Run(m, Options{})
	if r.Passed() {
		t.Fatal("planted invariant violation not detected")
	}
	v := r.Violations[0]
	if v.Kind != "invariant" || v.Depth != 5 {
		t.Errorf("violation = %+v; want invariant at depth 5", v)
	}
	if !strings.Contains(r.String(), "FAIL") {
		t.Errorf("report should say FAIL: %s", r)
	}
}

func TestRunDetectsTransitionViolation(t *testing.T) {
	m := cleanChain(10)
	m.badTrans = 3
	r := Run(m, Options{})
	if r.Passed() || r.Violations[0].Kind != "transition" {
		t.Fatalf("planted transition violation not detected: %v", r)
	}
}

func TestRunDetectsDeadlock(t *testing.T) {
	m := cleanChain(10)
	m.deadlockAt = 7
	r := Run(m, Options{})
	if r.Passed() || r.Violations[0].Kind != "deadlock" {
		t.Fatalf("planted deadlock not detected: %v", r)
	}
	if r.Violations[0].Depth != 7 {
		t.Errorf("deadlock depth = %d, want 7", r.Violations[0].Depth)
	}
}

func TestRunRespectsMaxStates(t *testing.T) {
	r := Run(cleanChain(1000), Options{MaxStates: 10})
	if !r.Truncated {
		t.Error("search should report truncation")
	}
	if r.OK() {
		t.Error("a truncated run must not claim OK")
	}
	if !r.Passed() {
		t.Error("a truncated run without violations should still pass")
	}
	if r.StatesExplored > 10 {
		t.Errorf("explored %d states, want <= 10", r.StatesExplored)
	}
}

func TestRunRespectsMaxDepth(t *testing.T) {
	r := Run(cleanChain(1000), Options{MaxDepth: 5})
	if !r.Truncated {
		t.Error("depth-bounded search should report truncation")
	}
	if r.MaxDepthReached > 5 {
		t.Errorf("MaxDepthReached = %d, want <= 5", r.MaxDepthReached)
	}
}

func TestRunProgressCallback(t *testing.T) {
	called := 0
	// The callback fires every 100k states; a long chain triggers it.
	r := Run(cleanChain(200_001), Options{Progress: func(int) { called++ }})
	if !r.Passed() {
		t.Fatalf("unexpected violations: %v", r)
	}
	if called == 0 {
		t.Error("progress callback never invoked")
	}
}

// The headline verification: the C3D protocol model explored exhaustively for
// small configurations, as in §IV-C of the paper. Two sockets with one load
// and one store per core is small enough for an ordinary test run; the
// 3-socket configuration is exercised by the verification experiment and the
// benchmark.
func TestC3DProtocolTwoSockets(t *testing.T) {
	m := core.NewProtocolModel(core.ProtocolConfig{Sockets: 2, LoadsPerCore: 1, StoresPerCore: 1})
	r := Run(m, Options{})
	if !r.OK() {
		t.Fatalf("C3D protocol verification failed:\n%s", r)
	}
	if r.StatesExplored < 1000 {
		t.Errorf("explored only %d states; the model looks under-constrained", r.StatesExplored)
	}
	if r.QuiescentStates == 0 {
		t.Error("no terminal quiescent states reached")
	}
}

func TestC3DFullDirVariantTwoSockets(t *testing.T) {
	m := core.NewProtocolModel(core.ProtocolConfig{Sockets: 2, LoadsPerCore: 1, StoresPerCore: 1, TrackDRAMCache: true})
	r := Run(m, Options{})
	if !r.OK() {
		t.Fatalf("c3d-full-dir protocol verification failed:\n%s", r)
	}
}

func TestC3DProtocolThreeSocketsBounded(t *testing.T) {
	if testing.Short() {
		t.Skip("3-socket exploration is slow; run without -short")
	}
	m := core.NewProtocolModel(core.ProtocolConfig{Sockets: 3, LoadsPerCore: 1, StoresPerCore: 1})
	// Bound the search so the unit test stays fast; the c3dcheck command runs
	// it exhaustively.
	r := Run(m, Options{MaxStates: 60_000})
	if !r.Passed() {
		t.Fatalf("C3D protocol verification failed:\n%s", r)
	}
}

func TestViolationString(t *testing.T) {
	v := Violation{Kind: "deadlock", State: "s", Depth: 3}
	if !strings.Contains(v.String(), "deadlock") {
		t.Errorf("Violation.String() = %q", v.String())
	}
	v = Violation{Kind: "invariant", State: "s", Depth: 1, Err: errors.New("boom")}
	if !strings.Contains(v.String(), "boom") {
		t.Errorf("Violation.String() = %q", v.String())
	}
}
