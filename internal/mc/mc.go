// Package mc is a small explicit-state model checker in the spirit of Murϕ,
// used to verify the C3D coherence protocol the way §IV-C of the paper does:
// exhaustive breadth-first enumeration of the reachable states of a
// message-level protocol model, checking safety invariants in every state and
// absence of deadlock (every state without successors must be quiescent).
//
// The checker is generic: it explores any Model whose states are encoded as
// canonical strings. The C3D protocol model lives in internal/core.
package mc

import (
	"fmt"
	"time"
)

// Model is a finite-state transition system with invariants.
type Model interface {
	// Name identifies the model in reports.
	Name() string
	// Initial returns the initial states.
	Initial() []string
	// Successors returns every state reachable in one step from state. It
	// returns an error if the transition itself violates a property (for
	// example a load observing a stale value).
	Successors(state string) ([]string, error)
	// Check verifies state invariants, returning an error describing the
	// first violation.
	Check(state string) error
	// Quiescent reports whether the state has no outstanding work. States
	// without successors must be quiescent; otherwise the system deadlocked.
	Quiescent(state string) bool
}

// StateFormatter is optionally implemented by models whose canonical state
// encoding is not human-readable (e.g. a binary layout). When a violation is
// reported, the checker uses it to render the offending state.
type StateFormatter interface {
	FormatState(state string) string
}

// Options bound the search.
type Options struct {
	// MaxStates aborts the search after this many distinct states
	// (0 = unlimited).
	MaxStates int
	// MaxDepth bounds the BFS depth (0 = unlimited).
	MaxDepth int
	// Progress, if non-nil, is called periodically with the number of states
	// explored so far.
	Progress func(states int)
}

// Violation describes a property violation found during the search.
type Violation struct {
	// Kind is "invariant", "transition" or "deadlock".
	Kind string
	// State is the canonical encoding of the offending state.
	State string
	// Depth is the BFS depth at which the state was found.
	Depth int
	// Err is the underlying error (nil for deadlocks).
	Err error
}

func (v Violation) String() string {
	if v.Err != nil {
		return fmt.Sprintf("%s violation at depth %d: %v", v.Kind, v.Depth, v.Err)
	}
	return fmt.Sprintf("%s at depth %d: %s", v.Kind, v.Depth, v.State)
}

// Report summarises a model-checking run.
type Report struct {
	Model           string
	StatesExplored  int
	TransitionsSeen int
	MaxDepthReached int
	QuiescentStates int
	Violations      []Violation
	Truncated       bool
	Elapsed         time.Duration
}

// OK reports whether the run completed without violations and without
// truncation.
func (r Report) OK() bool { return len(r.Violations) == 0 && !r.Truncated }

// Passed reports whether no violations were found (the search may still have
// been truncated by the options).
func (r Report) Passed() bool { return len(r.Violations) == 0 }

// String renders a one-paragraph summary.
func (r Report) String() string {
	status := "PASS"
	if !r.Passed() {
		status = "FAIL"
	} else if r.Truncated {
		status = "PASS (truncated)"
	}
	s := fmt.Sprintf("%s: %s — %d states, %d transitions, depth %d, %d terminal states, %v",
		r.Model, status, r.StatesExplored, r.TransitionsSeen, r.MaxDepthReached, r.QuiescentStates, r.Elapsed.Round(time.Millisecond))
	for _, v := range r.Violations {
		s += "\n  " + v.String()
	}
	return s
}

// Run explores the model breadth-first and returns the report. The search
// stops at the first violation (matching Murϕ's default behaviour) or when
// the state space is exhausted or the options' bounds are hit.
func Run(m Model, opts Options) Report {
	start := time.Now()
	report := Report{Model: m.Name()}
	// seen marks states that have been enqueued, so each distinct state is
	// processed exactly once and duplicate successors never inflate the
	// frontier.
	seen := make(map[string]struct{})
	type node struct {
		state string
		depth int
	}
	var frontier []node
	for _, s := range m.Initial() {
		if _, dup := seen[s]; dup {
			continue
		}
		seen[s] = struct{}{}
		frontier = append(frontier, node{state: s, depth: 0})
	}

	fail := func(kind, state string, depth int, err error) Report {
		if f, ok := m.(StateFormatter); ok {
			state = f.FormatState(state)
		}
		report.Violations = append(report.Violations, Violation{Kind: kind, State: state, Depth: depth, Err: err})
		report.Elapsed = time.Since(start)
		return report
	}

	for len(frontier) > 0 {
		var next []node
		for _, n := range frontier {
			report.StatesExplored++
			if n.depth > report.MaxDepthReached {
				report.MaxDepthReached = n.depth
			}
			if opts.Progress != nil && report.StatesExplored%100000 == 0 {
				opts.Progress(report.StatesExplored)
			}
			if err := m.Check(n.state); err != nil {
				return fail("invariant", n.state, n.depth, err)
			}
			if opts.MaxStates > 0 && report.StatesExplored >= opts.MaxStates {
				report.Truncated = true
				report.Elapsed = time.Since(start)
				return report
			}
			succ, err := m.Successors(n.state)
			if err != nil {
				return fail("transition", n.state, n.depth, err)
			}
			report.TransitionsSeen += len(succ)
			if len(succ) == 0 {
				if !m.Quiescent(n.state) {
					return fail("deadlock", n.state, n.depth, nil)
				}
				report.QuiescentStates++
				continue
			}
			if opts.MaxDepth > 0 && n.depth >= opts.MaxDepth {
				report.Truncated = true
				continue
			}
			for _, s := range succ {
				if _, dup := seen[s]; !dup {
					seen[s] = struct{}{}
					next = append(next, node{state: s, depth: n.depth + 1})
				}
			}
		}
		frontier = next
	}
	report.Elapsed = time.Since(start)
	return report
}
