// Package mc is a small explicit-state model checker in the spirit of Murϕ,
// used to verify the C3D coherence protocol the way §IV-C of the paper does:
// exhaustive breadth-first enumeration of the reachable states of a
// message-level protocol model, checking safety invariants in every state and
// absence of deadlock (every state without successors must be quiescent).
//
// The checker is generic: it explores any Model whose states are encoded as
// canonical strings. The C3D protocol model lives in internal/core.
//
// The search engine is a level-synchronized parallel BFS: each frontier level
// is explored by a pool of workers against a sharded visited set, per-worker
// frontier buffers are merged between levels, and every observable output is
// deterministic. Because BFS levels are sets (the visited set admits each
// state exactly once, no matter which worker wins the race), the counters in
// a Report — states, transitions, depth, quiescent states — are bit-identical
// at any Options.Parallelism. Violations are reported deterministically too:
// the search finishes the violating level and reports the violation of
// minimal depth, breaking ties by the lexicographically smallest canonical
// state, rather than "whichever worker got there first".
//
// Visited states are interned into per-shard byte arenas instead of being
// kept as individual map-key strings, and models can implement AppendModel
// to let workers reuse their successor buffers, so steady-state exploration
// allocates roughly one string per transition (the successor encoding) and
// nothing else.
package mc

import (
	"encoding/json"
	"fmt"
	"time"
)

// Model is a finite-state transition system with invariants. All methods must
// be safe for concurrent use: the checker calls them from multiple workers
// when Options.Parallelism exceeds one.
type Model interface {
	// Name identifies the model in reports.
	Name() string
	// Initial returns the initial states.
	Initial() []string
	// Successors returns every state reachable in one step from state. It
	// returns an error if the transition itself violates a property (for
	// example a load observing a stale value).
	Successors(state string) ([]string, error)
	// Check verifies state invariants, returning an error describing the
	// first violation.
	Check(state string) error
	// Quiescent reports whether the state has no outstanding work. States
	// without successors must be quiescent; otherwise the system deadlocked.
	Quiescent(state string) bool
}

// AppendModel is optionally implemented by models that can enumerate
// successors into a caller-provided buffer. The checker calls it with each
// worker's private buffer (successors of the previous state are no longer
// referenced), so a model that also reuses its own decode/encode scratch —
// core.ProtocolModel does — makes exploration allocate only the successor
// strings themselves. Models that do not implement it are explored through
// Successors.
type AppendModel interface {
	Model
	// SuccessorsAppend appends every state reachable in one step from state
	// to buf and returns the extended buffer, with the same error contract
	// as Successors.
	SuccessorsAppend(state string, buf []string) ([]string, error)
}

// StateFormatter is optionally implemented by models whose canonical state
// encoding is not human-readable (e.g. a binary layout). When a violation is
// reported, the checker uses it to render the offending state.
type StateFormatter interface {
	FormatState(state string) string
}

// DefaultProgressInterval is the Options.ProgressInterval used when none is
// set.
const DefaultProgressInterval = 100_000

// Options bound and parameterise the search. Parallelism affects wall-clock
// time only: every field of the resulting Report except Elapsed is
// bit-identical at any value.
type Options struct {
	// MaxStates aborts the search after this many distinct states
	// (0 = unlimited). When a frontier level would overflow the budget it is
	// trimmed to the lexicographically smallest states, so the explored
	// prefix is deterministic.
	MaxStates int
	// MaxDepth bounds the BFS depth (0 = unlimited).
	MaxDepth int
	// Parallelism is the number of workers exploring each frontier level
	// (<= 0 means GOMAXPROCS).
	Parallelism int
	// Progress, if non-nil, is called with the number of states explored so
	// far: once whenever the count crosses a multiple of ProgressInterval
	// (at a level boundary), and always once more when the search finishes.
	Progress func(states int)
	// ProgressInterval is the state-count interval between progress calls
	// (<= 0 means DefaultProgressInterval).
	ProgressInterval int
}

// Violation describes a property violation found during the search.
type Violation struct {
	// Kind is "invariant", "transition" or "deadlock".
	Kind string
	// State is the offending state, rendered through the model's
	// StateFormatter when it implements one (the canonical encoding
	// otherwise).
	State string
	// Depth is the BFS depth at which the state was found.
	Depth int
	// Err is the underlying error (nil for deadlocks).
	Err error
}

func (v Violation) String() string {
	if v.Err != nil {
		return fmt.Sprintf("%s violation at depth %d: %v", v.Kind, v.Depth, v.Err)
	}
	return fmt.Sprintf("%s at depth %d: %s", v.Kind, v.Depth, v.State)
}

// MarshalJSON renders the violation with its error as a string, so reports
// serialise losslessly (errors have no canonical JSON form).
func (v Violation) MarshalJSON() ([]byte, error) {
	msg := ""
	if v.Err != nil {
		msg = v.Err.Error()
	}
	return json.Marshal(struct {
		Kind  string `json:"kind"`
		State string `json:"state"`
		Depth int    `json:"depth"`
		Err   string `json:"err,omitempty"`
	}{v.Kind, v.State, v.Depth, msg})
}

// Report summarises a model-checking run. Every field except Elapsed is
// deterministic — identical across runs and parallelism levels — and Elapsed
// is excluded from the JSON form so serialised reports can be compared
// byte-for-byte (CI does exactly that).
type Report struct {
	Model           string      `json:"model"`
	StatesExplored  int         `json:"states_explored"`
	TransitionsSeen int         `json:"transitions_seen"`
	MaxDepthReached int         `json:"max_depth_reached"`
	QuiescentStates int         `json:"quiescent_states"`
	Violations      []Violation `json:"violations,omitempty"`
	Truncated       bool        `json:"truncated,omitempty"`
	// Interrupted is set when the search was aborted by context
	// cancellation; the counters above cover only the explored prefix and
	// are not deterministic.
	Interrupted bool          `json:"interrupted,omitempty"`
	Elapsed     time.Duration `json:"-"`
}

// OK reports whether the run completed without violations, without
// truncation and without being interrupted.
func (r Report) OK() bool { return len(r.Violations) == 0 && !r.Truncated && !r.Interrupted }

// Passed reports whether no violations were found (the search may still have
// been truncated by the options).
func (r Report) Passed() bool { return len(r.Violations) == 0 }

// String renders a one-paragraph summary.
func (r Report) String() string {
	status := "PASS"
	if !r.Passed() {
		status = "FAIL"
	} else if r.Interrupted {
		status = "INTERRUPTED"
	} else if r.Truncated {
		status = "PASS (truncated)"
	}
	s := fmt.Sprintf("%s: %s — %d states, %d transitions, depth %d, %d terminal states, %v",
		r.Model, status, r.StatesExplored, r.TransitionsSeen, r.MaxDepthReached, r.QuiescentStates, r.Elapsed.Round(time.Millisecond))
	for _, v := range r.Violations {
		s += "\n  " + v.String()
	}
	return s
}
