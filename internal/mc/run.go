package mc

import (
	"context"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Run explores the model breadth-first and returns the report.
//
// The search is level-synchronized: all states at depth d are explored before
// any state at depth d+1, by Options.Parallelism workers sharing the frontier
// through an atomic cursor. Each level is a set (the sharded visited set
// admits every distinct state exactly once), so the report's counters do not
// depend on worker scheduling. When a level contains violations the whole
// level is still finished and the violation with the lexicographically
// smallest canonical state is reported — matching Murϕ's default behaviour of
// stopping at the first (shallowest) violation, but deterministically so.
//
// Cancelling the context aborts the search between states (workers check it
// once per claimed chunk); the returned report carries the counters explored
// so far and Interrupted set. An interrupted report is not deterministic.
func Run(ctx context.Context, m Model, opts Options) Report {
	if ctx == nil {
		ctx = context.Background()
	}
	//c3dlint:allow determinism(feeds Report.Elapsed, which is excluded from deterministic report output)
	start := time.Now()
	parallelism := opts.Parallelism
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	interval := opts.ProgressInterval
	if interval <= 0 {
		interval = DefaultProgressInterval
	}

	s := &search{model: m, visited: newVisitedSet(), ctx: ctx}
	s.appendModel, _ = m.(AppendModel)
	s.workers = make([]*worker, parallelism)
	for i := range s.workers {
		s.workers[i] = &worker{s: s}
	}

	report := Report{Model: m.Name()}
	var frontier []string
	for _, st := range m.Initial() {
		if s.visited.insert(st) {
			frontier = append(frontier, st)
		}
	}

	depth := 0
	progressMark := 0
	for len(frontier) > 0 {
		if ctx.Err() != nil {
			report.Interrupted = true
			break
		}
		// Deterministic truncation: a level that would overflow the state
		// budget is trimmed to the lexicographically smallest remaining
		// states. Sorting happens only here, so unbounded searches never pay
		// for it.
		if opts.MaxStates > 0 {
			remaining := opts.MaxStates - report.StatesExplored
			if remaining <= 0 {
				report.Truncated = true
				break
			}
			if len(frontier) > remaining {
				sort.Strings(frontier)
				frontier = frontier[:remaining]
				report.Truncated = true
			}
		}
		expand := opts.MaxDepth <= 0 || depth < opts.MaxDepth
		if opts.MaxStates > 0 && report.StatesExplored+len(frontier) >= opts.MaxStates {
			// This level exhausts the state budget, so no successor could
			// ever be explored: skip inserting them instead of interning a
			// next level that is guaranteed to be discarded. Transitions are
			// still counted, and dropped successors mark the report
			// truncated, so no reported field changes.
			expand = false
		}

		s.runLevel(frontier, depth, expand)
		if ctx.Err() != nil {
			// The level was cut short: merge what the workers did finish and
			// stop. Counters are partial, which Interrupted flags.
			report.Interrupted = true
		}

		levelViolation := (*Violation)(nil)
		for _, w := range s.workers {
			report.StatesExplored += w.explored
			report.TransitionsSeen += w.transitions
			report.QuiescentStates += w.quiescent
			if w.dropped {
				report.Truncated = true
			}
			if w.violation != nil && (levelViolation == nil || w.violation.State < levelViolation.State) {
				levelViolation = w.violation
			}
			w.resetLevel()
		}
		if depth > report.MaxDepthReached {
			report.MaxDepthReached = depth
		}
		if opts.Progress != nil && report.StatesExplored/interval > progressMark {
			progressMark = report.StatesExplored / interval
			opts.Progress(report.StatesExplored)
		}
		if levelViolation != nil {
			v := *levelViolation
			if f, ok := m.(StateFormatter); ok {
				v.State = f.FormatState(v.State)
			}
			report.Violations = append(report.Violations, v)
			break
		}
		if report.Interrupted {
			break
		}

		// Merge the per-worker frontier buffers into the next level. The
		// merged order depends on scheduling, but the *set* does not, and
		// nothing below depends on the order (truncation sorts first).
		frontier = frontier[:0]
		for _, w := range s.workers {
			frontier = append(frontier, w.next...)
			w.next = w.next[:0]
		}
		depth++
	}

	report.Elapsed = time.Since(start) //c3dlint:allow determinism(Elapsed is excluded from deterministic report output)
	if opts.Progress != nil {
		// Final tick: a run always reports its last state count, even when it
		// never crossed the interval.
		opts.Progress(report.StatesExplored)
	}
	return report
}

// search is the shared state of one Run.
type search struct {
	model       Model
	appendModel AppendModel // nil when the model has no append fast path
	visited     *visitedSet
	workers     []*worker
	ctx         context.Context

	// level-scoped fields, set by runLevel.
	frontier []string
	depth    int
	expand   bool
	cursor   atomic.Int64
}

// worker holds one worker's level-scoped accumulators and its reusable
// buffers. Accumulators are merged (and reset) by Run between levels.
type worker struct {
	s *search

	explored    int
	transitions int
	quiescent   int
	dropped     bool
	violation   *Violation

	// next collects newly discovered states for the following level.
	next []string
	// buf is the successor buffer handed to AppendModel implementations.
	buf []string
}

func (w *worker) resetLevel() {
	w.explored, w.transitions, w.quiescent = 0, 0, 0
	w.dropped = false
	w.violation = nil
}

// levelChunk is the number of frontier states a worker claims per cursor
// bump: large enough to amortise the atomic, small enough to balance uneven
// state costs at level tails.
const levelChunk = 64

// runLevel explores one frontier level. Small levels (and single-worker
// searches) run inline on worker 0; larger ones fan out across the pool.
func (s *search) runLevel(frontier []string, depth int, expand bool) {
	s.frontier, s.depth, s.expand = frontier, depth, expand
	if len(s.workers) == 1 || len(frontier) < 2*levelChunk {
		w := s.workers[0]
		for i, st := range frontier {
			if i&(levelChunk-1) == 0 && s.ctx.Err() != nil {
				return
			}
			w.process(st)
		}
		return
	}
	s.cursor.Store(0)
	var wg sync.WaitGroup
	wg.Add(len(s.workers))
	for _, w := range s.workers {
		go func(w *worker) {
			defer wg.Done()
			for {
				if s.ctx.Err() != nil {
					return
				}
				hi := int(s.cursor.Add(levelChunk))
				lo := hi - levelChunk
				if lo >= len(s.frontier) {
					return
				}
				if hi > len(s.frontier) {
					hi = len(s.frontier)
				}
				for _, st := range s.frontier[lo:hi] {
					w.process(st)
				}
			}
		}(w)
	}
	wg.Wait()
}

// process explores one state: invariant check, successor enumeration,
// deadlock detection, and (when expanding) frontier insertion of newly
// visited successors.
func (w *worker) process(state string) {
	s := w.s
	w.explored++
	if err := s.model.Check(state); err != nil {
		w.observe(Violation{Kind: "invariant", State: state, Depth: s.depth, Err: err})
		return
	}
	var (
		succ []string
		err  error
	)
	if s.appendModel != nil {
		succ, err = s.appendModel.SuccessorsAppend(state, w.buf[:0])
		if cap(succ) > cap(w.buf) {
			w.buf = succ
		}
	} else {
		succ, err = s.model.Successors(state)
	}
	if err != nil {
		w.observe(Violation{Kind: "transition", State: state, Depth: s.depth, Err: err})
		return
	}
	w.transitions += len(succ)
	if len(succ) == 0 {
		if !s.model.Quiescent(state) {
			w.observe(Violation{Kind: "deadlock", State: state, Depth: s.depth})
			return
		}
		w.quiescent++
		return
	}
	if !s.expand {
		// Depth bound reached: the state's successors are dropped, which Run
		// records as truncation.
		w.dropped = true
		return
	}
	for _, n := range succ {
		if s.visited.insert(n) {
			w.next = append(w.next, n)
		}
	}
}

// observe keeps the worker's candidate violation: the one with the
// lexicographically smallest canonical state (all violations in a level share
// the same depth, so this plus Run's cross-worker merge yields the globally
// deterministic pick).
func (w *worker) observe(v Violation) {
	if w.violation == nil || v.State < w.violation.State {
		w.violation = &v
	}
}
