package mc

import "sync"

// visitedSet is the checker's concurrent set of visited states: a fixed
// number of independently locked shards selected by the top bits of a state's
// hash, so workers exploring a frontier level rarely contend on the same
// lock. Each shard is an open-addressing table whose keys are interned into a
// per-shard byte arena: inserting a state appends its bytes to the arena and
// records (hash, offset, length), so the set holds two allocations per shard
// in steady state (table and arena, both grown geometrically) instead of one
// map-key string per visited state.
//
// The set only ever grows and membership is insert-only, which is what makes
// the parallel BFS deterministic: whichever worker wins a racing insert, the
// set of states admitted at each level is the same.
type visitedSet struct {
	shards [numShards]visitedShard
}

const (
	shardBits = 6
	numShards = 1 << shardBits
)

type visitedShard struct {
	mu sync.Mutex
	// table is the open-addressing slot array; its length is a power of two.
	table []visitedEntry
	count int
	arena []byte
	// pad keeps neighbouring shards' hot fields on distinct cache lines.
	pad [24]byte //nolint:unused
}

// visitedEntry is one occupied slot: the state's full 64-bit hash (so probe
// collisions almost never touch the arena) and its [off, off+len) interval in
// the shard arena. len is stored +1 so the zero value marks an empty slot and
// zero-length states remain representable.
type visitedEntry struct {
	hash     uint64
	off      uint32
	lenPlus1 uint32
}

const initialShardSlots = 64

// hashState is FNV-1a finalised with the splitmix64 mixer — the same
// derivation internal/sweep uses for seeds. It is deterministic across runs
// (unlike maphash), which keeps shard assignment, and therefore memory
// behaviour, reproducible.
func hashState(s string) uint64 {
	const (
		fnvOffset = 0xcbf29ce484222325
		fnvPrime  = 0x100000001b3
	)
	h := uint64(fnvOffset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime
	}
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

func newVisitedSet() *visitedSet { return &visitedSet{} }

// insert adds s to the set and reports whether it was absent. Safe for
// concurrent use.
func (v *visitedSet) insert(s string) bool {
	h := hashState(s)
	sh := &v.shards[h>>(64-shardBits)]
	sh.mu.Lock()
	added := sh.insert(s, h)
	sh.mu.Unlock()
	return added
}

// contains reports membership without inserting. Safe for concurrent use.
func (v *visitedSet) contains(s string) bool {
	h := hashState(s)
	sh := &v.shards[h>>(64-shardBits)]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.table == nil {
		return false
	}
	mask := uint64(len(sh.table) - 1)
	for i := h & mask; ; i = (i + 1) & mask {
		e := &sh.table[i]
		if e.lenPlus1 == 0 {
			return false
		}
		if e.hash == h && sh.equals(e, s) {
			return true
		}
	}
}

// size returns the number of states in the set.
func (v *visitedSet) size() int {
	n := 0
	for i := range v.shards {
		sh := &v.shards[i]
		sh.mu.Lock()
		n += sh.count
		sh.mu.Unlock()
	}
	return n
}

// equals compares an entry's interned bytes with s. The compiler elides the
// []byte→string conversion in a pure comparison, so this does not allocate.
func (sh *visitedShard) equals(e *visitedEntry, s string) bool {
	return string(sh.arena[e.off:e.off+e.lenPlus1-1]) == s
}

// insert does the work of visitedSet.insert with the shard lock held.
func (sh *visitedShard) insert(s string, h uint64) bool {
	if sh.table == nil {
		sh.table = make([]visitedEntry, initialShardSlots)
	} else if sh.count >= len(sh.table)-len(sh.table)/4 {
		sh.grow()
	}
	mask := uint64(len(sh.table) - 1)
	for i := h & mask; ; i = (i + 1) & mask {
		e := &sh.table[i]
		if e.lenPlus1 == 0 {
			off := len(sh.arena)
			sh.arena = append(sh.arena, s...)
			*e = visitedEntry{hash: h, off: uint32(off), lenPlus1: uint32(len(s)) + 1}
			sh.count++
			return true
		}
		if e.hash == h && sh.equals(e, s) {
			return false
		}
	}
}

// grow doubles the slot array and reinserts the occupied slots (hashes are
// stored, so no state bytes are re-hashed and the arena is untouched).
func (sh *visitedShard) grow() {
	old := sh.table
	sh.table = make([]visitedEntry, 2*len(old))
	mask := uint64(len(sh.table) - 1)
	for _, e := range old {
		if e.lenPlus1 == 0 {
			continue
		}
		for i := e.hash & mask; ; i = (i + 1) & mask {
			if sh.table[i].lenPlus1 == 0 {
				sh.table[i] = e
				break
			}
		}
	}
}
