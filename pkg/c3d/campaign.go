package c3d

import (
	"context"
	"encoding/json"
	"fmt"

	"c3d/pkg/c3d/api"
)

// Campaign is a client-side handle to a distributed campaign: an ordered
// list of jobs submitted to a campaign coordinator (`c3dd -coordinator`),
// which shards them across its worker fleet, serves repeats from its
// content-addressed result cache, and assembles results in submission order
// regardless of which worker finished what when.
//
// Obtain one with SubmitCampaign, then Wait and Results:
//
//	cl := api.NewClient("http://coordinator:8080")
//	camp, err := c3d.SubmitCampaign(ctx, cl, specs)
//	if err != nil { ... }
//	if _, err := camp.Wait(ctx); err != nil { ... }
//	docs, err := camp.Results(ctx)
type Campaign struct {
	client *api.Client
	id     string
	total  int
}

// SubmitCampaign validates the specs against the coordinator's capabilities
// (eagerly, before anything is enqueued) and submits them as one campaign.
func SubmitCampaign(ctx context.Context, client *api.Client, specs []api.JobSpec) (*Campaign, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("c3d: empty campaign")
	}
	caps, err := client.Capabilities(ctx)
	if err != nil {
		return nil, fmt.Errorf("c3d: fetching remote capabilities: %w", err)
	}
	for i, spec := range specs {
		if err := caps.SupportsSpec(spec); err != nil {
			return nil, fmt.Errorf("c3d: campaign job %d: %w", i, err)
		}
	}
	resp, err := client.SubmitCampaign(ctx, api.CampaignSpec{Jobs: specs})
	if err != nil {
		return nil, err
	}
	return &Campaign{client: client, id: resp.ID, total: len(specs)}, nil
}

// ID returns the coordinator-assigned campaign id.
func (c *Campaign) ID() string { return c.id }

// Status fetches the campaign's current status document.
func (c *Campaign) Status(ctx context.Context) (*api.CampaignStatus, error) {
	return c.client.CampaignStatus(ctx, c.id)
}

// Wait blocks until the campaign reaches a terminal state and returns the
// final status. A failed campaign is reported as an error carrying the first
// failing job's message (in job order, so the error is deterministic too).
func (c *Campaign) Wait(ctx context.Context) (*api.CampaignStatus, error) {
	st, err := c.client.WaitCampaign(ctx, c.id)
	if err != nil {
		return nil, err
	}
	if st.State != api.StateDone {
		msg := st.Error
		for _, j := range st.Jobs {
			if j.Error != "" {
				msg = fmt.Sprintf("job %d: %s", j.Index, j.Error)
				break
			}
		}
		return st, fmt.Errorf("c3d: campaign %s %s: %s", c.id, st.State, msg)
	}
	return st, nil
}

// Results fetches the finished campaign's raw result documents, one per job
// in submission order. Each element is byte-identical to what the worker's
// (or a local daemon's) result endpoint would serve for that job.
func (c *Campaign) Results(ctx context.Context) ([][]byte, error) {
	res, err := c.client.CampaignResults(ctx, c.id)
	if err != nil {
		return nil, err
	}
	out := make([][]byte, len(res.Results))
	for i, raw := range res.Results {
		out[i] = []byte(raw)
	}
	return out, nil
}

// ExperimentResults decodes an all-experiment campaign's results into one
// flat result list in job order — the shape Sweep returns locally. Feeding
// it to WriteResultsJSON reproduces the local `c3dexp -json` bytes exactly
// (Table's JSON round trip is byte-stable; a test pins this).
func (c *Campaign) ExperimentResults(ctx context.Context) ([]ExperimentResult, error) {
	docs, err := c.Results(ctx)
	if err != nil {
		return nil, err
	}
	var out []ExperimentResult
	for i, doc := range docs {
		var results []ExperimentResult
		if err := json.Unmarshal(doc, &results); err != nil {
			return nil, fmt.Errorf("c3d: campaign job %d result is not an experiment document: %w", i, err)
		}
		out = append(out, results...)
	}
	return out, nil
}

// RemoteSweep is Sweep fanned out over a coordinator fleet: one experiment
// job per id (empty or "all" = every experiment the remote offers, in its
// presentation order), sharded across workers, assembled in id order. The
// returned results — and therefore WriteResultsJSON's bytes — are identical
// to a local Sweep with the same params, at any worker count and routing
// policy; repeated sweeps are served from the coordinator's result cache.
//
// cmd/c3dexp's -remote flag is a thin wrapper around this call.
func RemoteSweep(ctx context.Context, client *api.Client, p Params, ids ...string) ([]ExperimentResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	caps, err := client.Capabilities(ctx)
	if err != nil {
		return nil, fmt.Errorf("c3d: fetching remote capabilities: %w", err)
	}
	expand := len(ids) == 0
	for _, id := range ids {
		if id == "all" {
			expand = true
			break
		}
	}
	if expand {
		ids = nil
		for _, e := range caps.Experiments {
			ids = append(ids, e.ID)
		}
	}
	specs := make([]api.JobSpec, len(ids))
	for i, id := range ids {
		specs[i] = api.JobSpec{
			Kind:        api.KindExperiment,
			Params:      api.Params(p),
			Experiments: []string{id},
		}
		if err := caps.SupportsSpec(specs[i]); err != nil {
			return nil, fmt.Errorf("c3d: %w", err)
		}
	}
	resp, err := client.SubmitCampaign(ctx, api.CampaignSpec{Jobs: specs})
	if err != nil {
		return nil, err
	}
	camp := &Campaign{client: client, id: resp.ID, total: len(specs)}
	if _, err := camp.Wait(ctx); err != nil {
		return nil, err
	}
	return camp.ExperimentResults(ctx)
}
