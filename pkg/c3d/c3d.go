// Package c3d is the public SDK of the C3D reproduction: one composable,
// cancellable API in front of every capability of the simulator — single
// simulations, the paper's experiment campaigns, protocol verification and
// the streaming trace codec.
//
// The entry point is a Session built from functional options:
//
//	sess, err := c3d.New(
//		c3d.WithSockets(4),
//		c3d.WithDesign(c3d.C3D),
//		c3d.WithQuick(),
//	)
//	if err != nil { ... }
//	res, err := sess.Simulate(ctx, "streamcluster")
//
// Every long-running method takes a context.Context and stops promptly when
// it is cancelled — simulations abort between accesses, sweeps stop claiming
// jobs, model-checking searches abandon their frontier — and every failure is
// reported as an error (the SDK never panics on invalid configuration).
// Progress is delivered through the structured Event type via WithProgress.
//
// cmd/c3dsim, cmd/c3dexp, cmd/c3dcheck, cmd/c3dtrace and the cmd/c3dd job
// daemon are all thin clients of this package, so embedding the SDK gives
// exactly the CLI/service code path: results are bit-identical across all of
// them at any parallelism.
package c3d

import (
	"fmt"

	"c3d/internal/experiments"
	"c3d/internal/interconnect"
	"c3d/internal/machine"
	"c3d/internal/mc"
	"c3d/internal/numa"
	"c3d/internal/sample"
	"c3d/internal/stats"
	"c3d/internal/trace"
)

// Aliases re-export the stable result and parameter types so SDK users never
// import internal packages.
type (
	// Design selects the coherence design to evaluate.
	Design = machine.Design
	// Policy selects the NUMA page placement policy.
	Policy = numa.Policy
	// Topology selects the inter-socket fabric topology.
	Topology = interconnect.Topology
	// MachineConfig is the full simulated-machine configuration (Table II).
	MachineConfig = machine.Config
	// RunResult is the detailed result of one simulation.
	RunResult = machine.RunResult
	// Report is one model-checking report.
	Report = mc.Report
	// Table is a rendered result table (text, CSV and JSON forms).
	Table = stats.Table
	// Event is a structured progress notification (see WithProgress).
	Event = experiments.Event
	// EventKind classifies an Event.
	EventKind = experiments.EventKind
	// TraceSource is a streaming view of a workload trace.
	TraceSource = trace.Source
	// TraceRecord is one memory access of a trace.
	TraceRecord = trace.Record
	// TraceStats summarises a trace stream.
	TraceStats = trace.Stats
	// VerifyResult collects the reports of one Verify call.
	VerifyResult = experiments.VerifyResult
	// SamplingSpec is a SMARTS-style sampling schedule (see WithSampling).
	SamplingSpec = sample.Spec
	// SamplingResult is the sampling section of a sampled RunResult: window
	// counts and per-metric 95% confidence half-widths.
	SamplingResult = machine.SamplingResult
	// SamplingEstimate is one sampled metric: point estimate plus half-width.
	SamplingEstimate = sample.Estimate
)

// The evaluated coherence designs (§V-A).
const (
	Baseline   = machine.Baseline
	Snoopy     = machine.Snoopy
	FullDir    = machine.FullDir
	C3D        = machine.C3D
	C3DFullDir = machine.C3DFullDir
	SharedDRAM = machine.SharedDRAM
)

// The NUMA placement policies (§V, "Memory Allocation Policy").
const (
	Interleave  = numa.Interleave
	FirstTouch1 = numa.FirstTouch1
	FirstTouch2 = numa.FirstTouch2
)

// The built-in fabric topologies. The paper's two machine shapes are
// point-to-point (2 sockets) and ring (4); mesh and fully-connected
// generalize the fabric to 2-16 sockets.
const (
	PointToPoint   = interconnect.PointToPoint
	Ring           = interconnect.Ring
	Mesh           = interconnect.Mesh
	FullyConnected = interconnect.FullyConnected
)

// Progress event kinds.
const (
	EventSimulationDone   = experiments.EventSimulationDone
	EventSimulationFailed = experiments.EventSimulationFailed
	EventStatesExplored   = experiments.EventStatesExplored
)

// ParseDesign converts a design name (baseline, snoopy, full-dir, c3d,
// c3d-full-dir, shared) into a Design.
func ParseDesign(s string) (Design, error) { return machine.ParseDesign(s) }

// ParsePolicy converts a policy name (INT, FT1, FT2) into a Policy.
func ParsePolicy(s string) (Policy, error) { return numa.ParsePolicy(s) }

// ParseTopology converts a topology name (p2p, ring, mesh, full) into a
// Topology. Only registered topologies parse.
func ParseTopology(s string) (Topology, error) { return interconnect.ParseTopology(s) }

// Designs returns every registered design in evaluation order.
func Designs() []Design { return machine.Designs() }

// Topologies returns every registered fabric topology in registry order.
func Topologies() []Topology { return interconnect.Topologies() }

// Session is the facade in front of the simulator: an immutable bundle of
// configuration defaults that every method applies to its run. Sessions are
// cheap to create and safe for concurrent use — the c3dd daemon builds one
// per job.
type Session struct {
	cfg config
}

// New builds a Session from the options, validating them eagerly: an
// impossible configuration is reported here, not as a panic mid-run.
func New(opts ...Option) (*Session, error) {
	cfg := defaultConfig()
	for _, opt := range opts {
		opt(&cfg)
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return &Session{cfg: cfg}, nil
}

// With returns a copy of the session with extra options applied — per-call
// overrides without mutating the receiver.
func (s *Session) With(opts ...Option) (*Session, error) {
	cfg := s.cfg
	for _, opt := range opts {
		opt(&cfg)
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return &Session{cfg: cfg}, nil
}

// newMachine converts machine.New's configuration panic into an error at the
// SDK boundary.
func newMachine(cfg machine.Config) (m *machine.Machine, err error) {
	defer func() {
		if r := recover(); r != nil {
			if e, ok := r.(error); ok {
				err = fmt.Errorf("c3d: invalid machine configuration: %w", e)
			} else {
				err = fmt.Errorf("c3d: invalid machine configuration: %v", r)
			}
		}
	}()
	return machine.New(cfg), nil
}
