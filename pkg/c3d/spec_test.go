package c3d

import (
	"bytes"
	"context"
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"c3d/pkg/c3d/api"
)

// specDoc is a small workload-spec document over a registry base: cheap to
// run, distinct name, deterministic.
const specDoc = `{"version":1,"name":"spec-test-mix","base":"streamcluster","seed":11}`

// TestWithWorkloadSpecValidatesEagerly checks a bad document fails at New,
// before any job could be queued on it.
func TestWithWorkloadSpecValidatesEagerly(t *testing.T) {
	cases := map[string]string{
		"malformed json":   `{"version":1,`,
		"unknown version":  `{"version":9,"name":"a","base":"streamcluster"}`,
		"unknown base":     `{"version":1,"name":"a","base":"not-a-workload"}`,
		"no mode selected": `{"version":1,"name":"a"}`,
	}
	for name, doc := range cases {
		if _, err := New(WithWorkloadSpec([]byte(doc))); err == nil {
			t.Errorf("%s: New accepted the document", name)
		}
	}
	if _, err := New(WithWorkloadSpecFile("/does/not/exist.json")); err == nil {
		t.Error("New accepted an unreadable spec file")
	}
}

// TestSimulateWorkloadSpec runs a spec document through Simulate: the empty
// name and the spec's own name resolve to the compiled workload, registry
// names keep working, and an unknown name's error mentions the loaded spec.
func TestSimulateWorkloadSpec(t *testing.T) {
	sess, err := New(
		WithWorkloadSpec([]byte(specDoc)),
		WithQuick(),
		WithThreads(4),
		WithAccesses(300),
	)
	if err != nil {
		t.Fatal(err)
	}
	byEmpty, err := sess.Simulate(context.Background(), "")
	if err != nil {
		t.Fatalf("Simulate(\"\"): %v", err)
	}
	byName, err := sess.Simulate(context.Background(), "spec-test-mix")
	if err != nil {
		t.Fatalf("Simulate(spec name): %v", err)
	}
	if byEmpty.Cycles != byName.Cycles || byEmpty.Instructions != byName.Instructions {
		t.Errorf("empty-name and spec-name runs differ: %+v vs %+v", byEmpty.RunResult, byName.RunResult)
	}
	if _, err := sess.Simulate(context.Background(), "nutch"); err != nil {
		t.Errorf("registry workload stopped resolving with a spec loaded: %v", err)
	}
	if _, err := sess.Simulate(context.Background(), "not-a-workload"); err == nil {
		t.Error("unknown name resolved")
	} else if !strings.Contains(err.Error(), "spec-test-mix") {
		t.Errorf("unknown-name error does not mention the loaded spec: %v", err)
	}
}

// TestSimulateSpecMatchesRegistryMirror pins the SDK-level equivalence: a
// mirror document over a registry workload simulates bit-identically to
// naming the workload directly.
func TestSimulateSpecMatchesRegistryMirror(t *testing.T) {
	opts := []Option{WithQuick(), WithThreads(4), WithAccesses(300)}
	specSess, err := New(append([]Option{
		WithWorkloadSpec([]byte(`{"version":1,"name":"streamcluster","base":"streamcluster"}`)),
	}, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	regSess, err := New(opts...)
	if err != nil {
		t.Fatal(err)
	}
	got, err := specSess.Simulate(context.Background(), "")
	if err != nil {
		t.Fatal(err)
	}
	want, err := regSess.Simulate(context.Background(), "streamcluster")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.RunResult, want.RunResult) {
		t.Fatalf("mirror spec run differs from registry run:\n got %+v\nwant %+v", got.RunResult, want.RunResult)
	}
}

// TestExperimentSpecParallelInvariance is the determinism acceptance check
// at the campaign layer: an experiment over a spec workload must emit
// byte-identical JSON at parallelism 1 and 8.
func TestExperimentSpecParallelInvariance(t *testing.T) {
	run := func(parallel int) []byte {
		t.Helper()
		p := Params{
			Quick:       true,
			Threads:     4,
			Accesses:    200,
			Parallelism: parallel,
			Spec:        json.RawMessage(specDoc),
		}
		sess, err := p.Session()
		if err != nil {
			t.Fatal(err)
		}
		res, err := sess.Experiment(context.Background(), "table1")
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := WriteResultsJSON(&buf, []ExperimentResult{*res}); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	one := run(1)
	eight := run(8)
	if !bytes.Equal(one, eight) {
		t.Fatalf("experiment results differ across parallelism:\n-- parallel 1 --\n%s\n-- parallel 8 --\n%s", one, eight)
	}
	if !bytes.Contains(one, []byte("spec-test-mix")) {
		t.Fatalf("spec workload missing from experiment table:\n%s", one)
	}
}

// TestValidateJobSpecWorkloadSpec covers the daemon's door check for spec
// jobs: a spec document stands in for a workload name, and a bad document
// is rejected at submission.
func TestValidateJobSpecWorkloadSpec(t *testing.T) {
	ok := api.JobSpec{
		Kind:   api.KindSimulate,
		Params: api.Params{Quick: true, Spec: json.RawMessage(specDoc)},
	}
	if err := ValidateJobSpec(ok); err != nil {
		t.Errorf("spec job with empty workload name rejected: %v", err)
	}
	ok.Workload = "spec-test-mix"
	if err := ValidateJobSpec(ok); err != nil {
		t.Errorf("spec job naming the spec rejected: %v", err)
	}
	ok.Workload = "not-a-workload"
	if err := ValidateJobSpec(ok); err == nil {
		t.Error("spec job with unknown workload name accepted")
	}
	bad := api.JobSpec{
		Kind:   api.KindSimulate,
		Params: api.Params{Quick: true, Spec: json.RawMessage(`{"version":1}`)},
	}
	if err := ValidateJobSpec(bad); err == nil {
		t.Error("malformed spec document accepted")
	}
	noSpec := api.JobSpec{Kind: api.KindSimulate, Params: api.Params{Quick: true}}
	if err := ValidateJobSpec(noSpec); err == nil {
		t.Error("simulate job with neither workload nor spec accepted")
	}
}

// TestWorkloadHelpers exercises the Workloads/ParseWorkload pair added to
// mirror Topologies/ParseTopology over the open registry.
func TestWorkloadHelpers(t *testing.T) {
	info, err := ParseWorkload("facesim")
	if err != nil {
		t.Fatal(err)
	}
	if info.Name != "facesim" || !info.InSuite {
		t.Errorf("ParseWorkload(facesim) = %+v, want suite member", info)
	}
	if _, err := ParseWorkload("not-a-workload"); err == nil {
		t.Error("ParseWorkload accepted an unknown name")
	} else if !strings.Contains(err.Error(), "facesim") {
		t.Errorf("unknown-workload error does not list known names: %v", err)
	}
	byName := map[string]WorkloadInfo{}
	for _, w := range Workloads() {
		byName[w.Name] = w
	}
	preset, ok := byName["multitenant-mix"]
	if !ok {
		t.Fatal("embedded preset multitenant-mix not listed by Workloads()")
	}
	if preset.InSuite {
		t.Error("preset marked as a suite member")
	}
	if !byName["facesim"].InSuite {
		t.Error("facesim not marked as a suite member")
	}
}
