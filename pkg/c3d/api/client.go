package api

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"time"
)

// Client speaks the c3dd job API and the coordinator campaign API. It is
// safe for concurrent use; every method takes a context and stops promptly
// when it is cancelled.
//
// Transient failures — connection errors and HTTP 502/503/504 — are retried
// with exponential backoff up to the configured attempt count. Submissions
// are retried too: jobs are deterministic and campaign results are
// content-addressed, so the worst case of a retry racing a response that was
// lost in flight is a duplicate job whose result is identical (and usually a
// cache hit).
type Client struct {
	base       string
	http       *http.Client
	retries    int
	backoff    time.Duration
	backoffCap time.Duration
	jitterSeed uint64
}

// ClientOption configures a Client.
type ClientOption func(*Client)

// WithHTTPClient substitutes the underlying HTTP client (default
// http.DefaultClient). Streaming endpoints need a client without a global
// timeout; use transport-level timeouts instead.
func WithHTTPClient(h *http.Client) ClientOption { return func(c *Client) { c.http = h } }

// WithRetries sets how many times a transiently-failed request is retried
// (default 3; 0 disables retrying).
func WithRetries(n int) ClientOption { return func(c *Client) { c.retries = n } }

// WithBackoff sets the initial retry backoff, doubled per attempt up to the
// backoff cap (default 100ms).
func WithBackoff(d time.Duration) ClientOption { return func(c *Client) { c.backoff = d } }

// WithBackoffCap bounds the per-attempt retry delay (default 5s). Without a
// cap, doubling per attempt overflows time.Duration around attempt 33 and
// produces negative (i.e. zero) sleeps — a retry storm exactly when the
// server is least able to absorb one.
func WithBackoffCap(d time.Duration) ClientOption { return func(c *Client) { c.backoffCap = d } }

// WithJitterSeed seeds the deterministic retry jitter (default 1). Every
// retry delay is scaled into [d/2, d) by a splitmix64 stream over
// (seed, attempt), so the schedule is fully reproducible for a given seed —
// chaos tests can pin it — while distinct seeds desynchronise clients that
// would otherwise retry in lockstep.
func WithJitterSeed(seed uint64) ClientOption { return func(c *Client) { c.jitterSeed = seed } }

// NewClient builds a client for the daemon or coordinator at baseURL
// (e.g. "http://127.0.0.1:8080").
func NewClient(baseURL string, opts ...ClientOption) *Client {
	c := &Client{
		base:       strings.TrimRight(baseURL, "/"),
		http:       http.DefaultClient,
		retries:    3,
		backoff:    100 * time.Millisecond,
		backoffCap: 5 * time.Second,
		jitterSeed: 1,
	}
	for _, opt := range opts {
		opt(c)
	}
	return c
}

// BaseURL returns the server address the client was built with.
func (c *Client) BaseURL() string { return c.base }

// transient reports whether a response status is worth retrying: gateway
// errors and overload answers clear up; everything else is deterministic.
func transient(status int) bool {
	return status == http.StatusBadGateway ||
		status == http.StatusServiceUnavailable ||
		status == http.StatusGatewayTimeout
}

// do issues one request with retry+backoff, decodes error envelopes, and on
// success returns the response body. body is re-marshalled per attempt, so
// retries never reuse a consumed reader.
func (c *Client) do(ctx context.Context, method, path string, body any, out any) error {
	raw, err := c.doRaw(ctx, method, path, body)
	if err != nil {
		return err
	}
	if out == nil {
		return nil
	}
	if err := json.Unmarshal(raw, out); err != nil {
		return fmt.Errorf("api: decoding %s %s response: %w", method, path, err)
	}
	return nil
}

func (c *Client) doRaw(ctx context.Context, method, path string, body any) ([]byte, error) {
	var payload []byte
	if body != nil {
		var err error
		if payload, err = json.Marshal(body); err != nil {
			return nil, fmt.Errorf("api: encoding %s %s request: %w", method, path, err)
		}
	}
	var lastErr error
	for attempt := 0; ; attempt++ {
		raw, retryable, err := c.attempt(ctx, method, path, payload)
		if err == nil {
			return raw, nil
		}
		lastErr = err
		if !retryable || attempt >= c.retries {
			return nil, lastErr
		}
		select {
		case <-time.After(c.retryDelay(attempt)):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// attempt runs a single HTTP exchange. retryable distinguishes transient
// transport/overload failures from deterministic API errors.
func (c *Client) attempt(ctx context.Context, method, path string, payload []byte) (raw []byte, retryable bool, err error) {
	var rd io.Reader
	if payload != nil {
		rd = bytes.NewReader(payload)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return nil, false, err
	}
	if payload != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.http.Do(req)
	if err != nil {
		// Network-level failure: the server may be restarting or not yet
		// listening. Retry unless the context is the reason.
		if ctx.Err() != nil {
			return nil, false, ctx.Err()
		}
		return nil, true, err
	}
	defer resp.Body.Close()
	raw, err = io.ReadAll(resp.Body)
	if err != nil {
		return nil, ctx.Err() == nil, err
	}
	if resp.StatusCode >= 200 && resp.StatusCode < 300 {
		return raw, false, nil
	}
	return nil, transient(resp.StatusCode), decodeError(resp.StatusCode, raw)
}

// retryDelay computes the sleep before retry number attempt (0-based):
// exponential growth from the base backoff, capped, then jittered
// deterministically into [d/2, d). The doubling is overflow-safe — the old
// `backoff << attempt` wrapped negative around attempt 33 and slept zero,
// turning a long outage into a tight retry loop.
func (c *Client) retryDelay(attempt int) time.Duration {
	d := c.backoff
	limit := c.backoffCap
	if limit < d {
		limit = d
	}
	for i := 0; i < attempt && d < limit; i++ {
		d <<= 1
		if d <= 0 { // overflow guard
			d = limit
		}
	}
	if d > limit {
		d = limit
	}
	half := d / 2
	if half <= 0 {
		return d
	}
	return half + time.Duration(splitmix64(c.jitterSeed+uint64(attempt)*0x9e3779b97f4a7c15)%uint64(half))
}

// splitmix64 is the standard 64-bit mixer; the package is stdlib-only, so it
// carries its own copy (same constants as internal/sweep's seeding).
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// decodeError turns a non-2xx body into an *Error, synthesising an envelope
// for servers that answered with plain text (proxies, panics).
func decodeError(status int, body []byte) error {
	var env ErrorEnvelope
	if err := json.Unmarshal(body, &env); err == nil && env.Error != nil && env.Error.Message != "" {
		env.Error.HTTPStatus = status
		return env.Error
	}
	return &Error{
		Code:       CodeInternal,
		Message:    fmt.Sprintf("HTTP %d: %s", status, bytes.TrimSpace(body)),
		HTTPStatus: status,
	}
}

// Health fetches GET /healthz.
func (c *Client) Health(ctx context.Context) (*Health, error) {
	var h Health
	if err := c.do(ctx, http.MethodGet, "/healthz", nil, &h); err != nil {
		return nil, err
	}
	return &h, nil
}

// Capabilities fetches GET /v1/capabilities: the server's designs,
// topologies, experiments, workloads and version, for eager client-side
// validation.
func (c *Client) Capabilities(ctx context.Context) (*Capabilities, error) {
	var caps Capabilities
	if err := c.do(ctx, http.MethodGet, "/v1/capabilities", nil, &caps); err != nil {
		return nil, err
	}
	return &caps, nil
}

// Submit posts a job spec and returns its assigned id.
func (c *Client) Submit(ctx context.Context, spec JobSpec) (*SubmitResponse, error) {
	var out SubmitResponse
	if err := c.do(ctx, http.MethodPost, "/v1/jobs", spec, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Status fetches one job's status document.
func (c *Client) Status(ctx context.Context, id string) (*JobStatus, error) {
	var st JobStatus
	if err := c.do(ctx, http.MethodGet, "/v1/jobs/"+url.PathEscape(id), nil, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Jobs fetches one page of job statuses (limit 0 = the server default).
func (c *Client) Jobs(ctx context.Context, offset, limit int) (*JobPage, error) {
	path := fmt.Sprintf("/v1/jobs?offset=%d", offset)
	if limit > 0 {
		path += fmt.Sprintf("&limit=%d", limit)
	}
	var page JobPage
	if err := c.do(ctx, http.MethodGet, path, nil, &page); err != nil {
		return nil, err
	}
	return &page, nil
}

// Events streams a job's progress, invoking fn for every event line —
// replayed history first, then live events — until the stream reaches the
// terminal job_state marker, fn returns an error, or the context is
// cancelled. A connection dropped mid-stream is re-established and the
// replayed prefix skipped, so fn sees every event exactly once.
func (c *Client) Events(ctx context.Context, id string, fn func(Event) error) error {
	seen := 0
	for attempt := 0; ; attempt++ {
		n, done, err := c.streamEvents(ctx, id, seen, fn)
		seen += n
		if done || err == nil {
			return err
		}
		if ctx.Err() != nil {
			return ctx.Err()
		}
		var apiErr *Error
		if errors.As(err, &apiErr) && !transient(apiErr.HTTPStatus) {
			return err
		}
		if attempt >= c.retries {
			return err
		}
		select {
		case <-time.After(c.retryDelay(attempt)):
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// streamEvents runs one events connection, skipping the first skip lines.
// done reports the terminal marker was seen (the stream is complete).
func (c *Client) streamEvents(ctx context.Context, id string, skip int, fn func(Event) error) (delivered int, done bool, err error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/jobs/"+url.PathEscape(id)+"/events", nil)
	if err != nil {
		return 0, false, err
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return 0, false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		return 0, false, decodeError(resp.StatusCode, body)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		if skip > 0 {
			skip--
			continue
		}
		var ev Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			return delivered, false, fmt.Errorf("api: bad event line %q: %w", sc.Text(), err)
		}
		delivered++
		if fn != nil {
			if err := fn(ev); err != nil {
				return delivered, true, err
			}
		}
		if ev.Kind == EventJobState && Terminal(ev.State) {
			return delivered, true, nil
		}
	}
	if err := sc.Err(); err != nil {
		return delivered, false, err
	}
	// EOF without a terminal marker: the connection was cut. Resume.
	return delivered, false, fmt.Errorf("api: event stream for %s ended before a terminal marker", id)
}

// Wait polls a job's status until it reaches a terminal state and returns
// the final status. A job that failed or was cancelled is reported through
// the returned status, not an error — err is for transport-level trouble.
func (c *Client) Wait(ctx context.Context, id string) (*JobStatus, error) {
	delay := 25 * time.Millisecond
	for {
		st, err := c.Status(ctx, id)
		if err != nil {
			return nil, err
		}
		if Terminal(st.State) {
			return st, nil
		}
		select {
		case <-time.After(delay):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		if delay < time.Second {
			delay *= 2
		}
	}
}

// Result fetches a finished job's raw result document. For a failed job that
// still carries a result (a verification that found violations), the bytes
// are returned together with a *Error of code job_failed.
func (c *Client) Result(ctx context.Context, id string) ([]byte, error) {
	var lastErr error
	for attempt := 0; attempt <= c.retries; attempt++ {
		raw, retryable, err := c.resultAttempt(ctx, id)
		if err == nil || !retryable {
			return raw, err
		}
		lastErr = err
		select {
		case <-time.After(c.retryDelay(attempt)):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	return nil, lastErr
}

func (c *Client) resultAttempt(ctx context.Context, id string) (raw []byte, retryable bool, err error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/jobs/"+url.PathEscape(id)+"/result", nil)
	if err != nil {
		return nil, false, err
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, ctx.Err() == nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, ctx.Err() == nil, err
	}
	switch {
	case resp.StatusCode == http.StatusOK:
		return body, false, nil
	case resp.StatusCode == http.StatusUnprocessableEntity:
		// Failed job with a result document: error + bytes.
		return body, false, &Error{
			Code:       CodeJobFailed,
			Message:    resp.Header.Get("X-C3D-Job-Error"),
			HTTPStatus: resp.StatusCode,
		}
	default:
		return nil, transient(resp.StatusCode), decodeError(resp.StatusCode, body)
	}
}

// Cancel requests cancellation of a queued or running job and returns the
// job's state after the request (a still-queued job flips to cancelled
// immediately).
func (c *Client) Cancel(ctx context.Context, id string) (*SubmitResponse, error) {
	var out SubmitResponse
	if err := c.do(ctx, http.MethodDelete, "/v1/jobs/"+url.PathEscape(id), nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// SubmitCampaign posts an ordered list of job specs to a coordinator.
func (c *Client) SubmitCampaign(ctx context.Context, spec CampaignSpec) (*SubmitResponse, error) {
	var out SubmitResponse
	if err := c.do(ctx, http.MethodPost, "/v1/campaigns", spec, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// CampaignStatus fetches one campaign's status document.
func (c *Client) CampaignStatus(ctx context.Context, id string) (*CampaignStatus, error) {
	var st CampaignStatus
	if err := c.do(ctx, http.MethodGet, "/v1/campaigns/"+url.PathEscape(id), nil, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// WaitCampaign polls a campaign until it reaches a terminal state.
func (c *Client) WaitCampaign(ctx context.Context, id string) (*CampaignStatus, error) {
	delay := 25 * time.Millisecond
	for {
		st, err := c.CampaignStatus(ctx, id)
		if err != nil {
			return nil, err
		}
		if Terminal(st.State) {
			return st, nil
		}
		select {
		case <-time.After(delay):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		if delay < time.Second {
			delay *= 2
		}
	}
}

// CampaignResults fetches a finished campaign's per-job result documents, in
// submission order.
func (c *Client) CampaignResults(ctx context.Context, id string) (*CampaignResults, error) {
	var res CampaignResults
	if err := c.do(ctx, http.MethodGet, "/v1/campaigns/"+url.PathEscape(id)+"/results", nil, &res); err != nil {
		return nil, err
	}
	return &res, nil
}

// CancelCampaign requests cancellation of a campaign: unstarted jobs stay
// unrun and in-flight worker jobs are cancelled.
func (c *Client) CancelCampaign(ctx context.Context, id string) error {
	return c.do(ctx, http.MethodDelete, "/v1/campaigns/"+url.PathEscape(id), nil, nil)
}
