// Package api defines the wire contract of the c3dd job service and the
// campaign coordinator: every JSON document that crosses the HTTP boundary —
// job specifications, statuses, progress event lines, error envelopes,
// capability documents and campaign shapes — plus a Go Client that speaks
// them.
//
// These types were promoted out of internal/server so that servers and
// clients share one declaration instead of hand-rolling JSON: the daemon
// (internal/server), the campaign coordinator (internal/campaign), the SDK
// (pkg/c3d, whose Params is a defined type over api.Params) and external
// programs all import this package. The JSON field names are frozen — a
// compat test pins every one — so changing a tag here is a wire-format break
// and must be treated as such.
//
// Wire change (2026-08): Params gained the optional "spec" field carrying a
// workload-spec document verbatim. Old servers reject unknown fields, so a
// client sending "spec" to a pre-spec daemon gets a clean 400 invalid_spec
// rather than a silently ignored knob; old clients never emit the field and
// are unaffected. Additive, backwards compatible.
//
// Wire change (2026-08): Params gained the optional "sampling" field carrying
// a SMARTS-style sampling schedule ("stretch=N,warm=N,win=N[,seed=S]").
// Sampling parameters are semantic — two specs differing only in sampling
// produce different result bytes — so campaign result caches key on the field
// like any other. As with "spec", old daemons reject it with a clean 400
// invalid_spec (DisallowUnknownFields), old clients never send it. Additive,
// backwards compatible.
//
// The package depends only on the standard library: importing it pulls in no
// simulator code.
package api

import (
	"encoding/json"
	"fmt"
	"time"
)

// Params is the flat, serialisable form of a session configuration: the
// shape CLI flags parse into and the job API accepts as JSON. pkg/c3d
// defines its Params type over this struct, so the SDK and the wire agree on
// field names by construction.
type Params struct {
	// Quick switches experiment campaigns to the reduced configuration.
	Quick bool `json:"quick,omitempty"`
	// Design names the coherence design for simulations ("c3d", ...).
	Design string `json:"design,omitempty"`
	// Policy pins the NUMA placement policy ("INT", "FT1", "FT2"); empty
	// means the workload's preferred policy.
	Policy string `json:"policy,omitempty"`
	// Topology names the fabric topology ("p2p", "ring", "mesh", "full");
	// empty means the socket count's default.
	Topology string `json:"topology,omitempty"`
	// Sockets, Threads, Accesses and Scale override the configuration's
	// machine and workload shape (0 = default).
	Sockets  int `json:"sockets,omitempty"`
	Threads  int `json:"threads,omitempty"`
	Accesses int `json:"accesses,omitempty"`
	Scale    int `json:"scale,omitempty"`
	// Warmup overrides the warm-up fraction (nil = default 0.25).
	Warmup *float64 `json:"warmup,omitempty"`
	// Workloads restricts experiment campaigns to a subset.
	Workloads []string `json:"workloads,omitempty"`
	// Parallelism bounds concurrent simulations / checker workers
	// (0 = GOMAXPROCS; results identical at any value).
	Parallelism int `json:"parallel,omitempty"`
	// Stream selects streaming generation (nil = the method's default:
	// streaming for simulations, materialised for campaigns).
	Stream *bool `json:"stream,omitempty"`
	// Seed offsets workload generation.
	Seed int64 `json:"seed,omitempty"`
	// BroadcastFilter enables the §IV-D private-page broadcast filter.
	BroadcastFilter bool `json:"broadcast_filter,omitempty"`
	// Spec carries a workload-spec document (the internal/wspec JSON DSL)
	// verbatim. The compiled workload resolves wherever a workload name is
	// expected on the server: a simulate job with an empty workload runs it,
	// and experiment campaigns use it in place of the registry suite. The
	// document travels by value, so a worker needs no filesystem access and
	// the coordinator's content-addressed result cache keys on the full spec
	// text automatically.
	Spec json.RawMessage `json:"spec,omitempty"`
	// Sampling selects SMARTS-style sampled simulation under the given
	// schedule spec ("stretch=N,warm=N,win=N[,seed=S]"); empty means full
	// detailed simulation. Sampled results carry per-metric 95% confidence
	// half-widths and remain byte-identical across parallelism for a fixed
	// (config, seed, sampling) triple.
	Sampling string `json:"sampling,omitempty"`
}

// Job kinds accepted by POST /v1/jobs.
const (
	KindExperiment = "experiment"
	KindSimulate   = "simulate"
	KindVerify     = "verify"
)

// JobSpec is the submission body of POST /v1/jobs.
type JobSpec struct {
	// Kind selects what to run: "experiment", "simulate" or "verify".
	Kind string `json:"kind"`
	// Params configures the session exactly as the CLI flags do.
	Params Params `json:"params"`
	// Experiments lists experiment ids for kind "experiment" (empty or
	// ["all"] = the full set).
	Experiments []string `json:"experiments,omitempty"`
	// Workload names the workload for kind "simulate".
	Workload string `json:"workload,omitempty"`
	// Verify parameterises kind "verify".
	Verify VerifySpec `json:"verify,omitempty"`
}

// VerifySpec mirrors c3d.VerifyRequest in JSON form.
type VerifySpec struct {
	Sockets       int  `json:"sockets,omitempty"`
	LoadsPerCore  int  `json:"loads,omitempty"`
	StoresPerCore int  `json:"stores,omitempty"`
	MaxStates     int  `json:"max_states,omitempty"`
	BaseOnly      bool `json:"base_only,omitempty"`
}

// Job and campaign lifecycle states.
const (
	StateQueued    = "queued"
	StateRunning   = "running"
	StateDone      = "done"
	StateFailed    = "failed"
	StateCancelled = "cancelled"
)

// Terminal reports whether a job or campaign state is final.
func Terminal(state string) bool {
	return state == StateDone || state == StateFailed || state == StateCancelled
}

// JobStatus is the status document of GET /v1/jobs/{id}.
type JobStatus struct {
	ID       string    `json:"id"`
	Kind     string    `json:"kind"`
	State    string    `json:"state"`
	Error    string    `json:"error,omitempty"`
	Created  time.Time `json:"created"`
	Started  time.Time `json:"started,omitzero"`
	Finished time.Time `json:"finished,omitzero"`
	Events   int       `json:"events"`
}

// JobPage is the bounded response of GET /v1/jobs: one page of statuses in
// insertion order plus enough bookkeeping to fetch the next page.
type JobPage struct {
	Jobs []JobStatus `json:"jobs"`
	// Total is the number of retained jobs, Offset the index of the first
	// entry of this page within them.
	Total  int `json:"total"`
	Offset int `json:"offset"`
}

// SubmitResponse is the body of a successful POST /v1/jobs or
// POST /v1/campaigns.
type SubmitResponse struct {
	ID    string `json:"id"`
	State string `json:"state"`
}

// Event is one line of the GET /v1/jobs/{id}/events JSON-lines stream: a
// structured progress notification, or a job_state marker (Kind "job_state",
// State set). The final line of a stream is always the terminal job_state
// marker.
type Event struct {
	Kind      string  `json:"kind"`
	State     string  `json:"state,omitempty"`
	Job       string  `json:"job,omitempty"`
	Done      int     `json:"done,omitempty"`
	Total     int     `json:"total,omitempty"`
	States    int     `json:"states,omitempty"`
	ElapsedMs float64 `json:"elapsed_ms,omitempty"`
	Err       string  `json:"err,omitempty"`
}

// EventJobState is the Kind of lifecycle marker lines in an event stream.
const EventJobState = "job_state"

// Machine-readable error codes carried by the error envelope. Clients switch
// on these, never on message text.
const (
	// CodeInvalidSpec: the request body failed validation (HTTP 400).
	CodeInvalidSpec = "invalid_spec"
	// CodeNotFound: no such job or campaign (HTTP 404).
	CodeNotFound = "not_found"
	// CodeQueueFull: the admission queue is at capacity (HTTP 503).
	CodeQueueFull = "queue_full"
	// CodeRateLimited: token-bucket admission rejected the request (HTTP 429).
	CodeRateLimited = "rate_limited"
	// CodeConflict: the resource is not in a state that allows the request,
	// e.g. fetching the result of an unfinished job (HTTP 409).
	CodeConflict = "conflict"
	// CodeJobFailed: the job finished unsuccessfully (HTTP 422).
	CodeJobFailed = "job_failed"
	// CodeShuttingDown: the server is draining and accepts no new work
	// (HTTP 503).
	CodeShuttingDown = "shutting_down"
	// CodeInternal: an unexpected server-side failure (HTTP 5xx).
	CodeInternal = "internal"
)

// Error is the uniform error body of every non-2xx API response:
//
//	{"error": {"code": "not_found", "message": "unknown job \"job-000042\""}}
//
// It implements the error interface, so api.Client surfaces it directly; use
// errors.As plus the Code to branch on failure classes.
type Error struct {
	Code    string `json:"code"`
	Message string `json:"message"`
	// HTTPStatus is the response's status code. It is not part of the wire
	// body (the HTTP layer already carries it) — the client fills it in.
	HTTPStatus int `json:"-"`
}

func (e *Error) Error() string {
	if e.Code == "" {
		return e.Message
	}
	return fmt.Sprintf("%s: %s", e.Code, e.Message)
}

// ErrorEnvelope is the top-level shape wrapping Error on the wire.
type ErrorEnvelope struct {
	Error *Error `json:"error"`
}

// ExperimentInfo describes one runnable experiment in a capabilities
// document.
type ExperimentInfo struct {
	ID          string `json:"id"`
	Paper       string `json:"paper"`
	Description string `json:"description"`
}

// Capabilities is the response of GET /v1/capabilities: everything a remote
// client needs to validate a JobSpec eagerly — before submission — the way
// the SDK's options validate locally.
type Capabilities struct {
	Version     string           `json:"version"`
	Designs     []string         `json:"designs"`
	Topologies  []string         `json:"topologies"`
	Experiments []ExperimentInfo `json:"experiments"`
	Workloads   []string         `json:"workloads"`
}

// SupportsSpec checks a job spec against the capability lists: unknown
// experiment ids, workloads, designs and topologies are reported before any
// network round trip that would carry the doomed spec. It is a name-level
// check — numeric-range validation still happens server-side.
func (c *Capabilities) SupportsSpec(spec JobSpec) error {
	if spec.Params.Design != "" && !contains(c.Designs, spec.Params.Design) {
		return fmt.Errorf("remote does not support design %q (has %v)", spec.Params.Design, c.Designs)
	}
	if spec.Params.Topology != "" && !contains(c.Topologies, spec.Params.Topology) {
		return fmt.Errorf("remote does not support topology %q (has %v)", spec.Params.Topology, c.Topologies)
	}
	// A workload-spec document defines workloads the server compiles at
	// submission time, so name-level workload checks cannot apply: the
	// server-side validation is authoritative for spec jobs.
	hasSpec := len(spec.Params.Spec) > 0
	if !hasSpec {
		for _, w := range spec.Params.Workloads {
			if !contains(c.Workloads, w) {
				return fmt.Errorf("remote does not support workload %q", w)
			}
		}
	}
	switch spec.Kind {
	case KindExperiment:
		for _, id := range spec.Experiments {
			if id == "all" {
				continue
			}
			if !containsExperiment(c.Experiments, id) {
				return fmt.Errorf("remote does not support experiment %q", id)
			}
		}
	case KindSimulate:
		if !hasSpec && spec.Workload != "" && !contains(c.Workloads, spec.Workload) {
			return fmt.Errorf("remote does not support workload %q", spec.Workload)
		}
	}
	return nil
}

func contains(list []string, s string) bool {
	for _, v := range list {
		if v == s {
			return true
		}
	}
	return false
}

func containsExperiment(list []ExperimentInfo, id string) bool {
	for _, e := range list {
		if e.ID == id {
			return true
		}
	}
	return false
}

// Health is the response of GET /healthz on a worker daemon or a
// coordinator. Worker fields are always present; the coordinator adds its
// fleet and cache views.
type Health struct {
	Status   string `json:"status"`
	Version  string `json:"version"`
	Queued   int    `json:"queued"`
	Running  int    `json:"running"`
	Finished int    `json:"finished"`

	// Coordinator-only fields.
	Workers []WorkerHealth `json:"workers,omitempty"`
	Cache   *CacheStats    `json:"cache,omitempty"`
}

// WorkerHealth is a coordinator's view of one worker daemon.
type WorkerHealth struct {
	URL     string `json:"url"`
	Healthy bool   `json:"healthy"`
	// Assigned counts jobs the coordinator dispatched to this worker (over
	// its lifetime), Inflight those currently dispatched and unfinished.
	Assigned int64 `json:"assigned"`
	Inflight int64 `json:"inflight"`
}

// CacheStats reports the coordinator's content-addressed result cache: a hit
// means a job's result was served from cache instead of being re-run
// anywhere in the fleet.
type CacheStats struct {
	Entries int   `json:"entries"`
	Hits    int64 `json:"hits"`
	Misses  int64 `json:"misses"`
}

// CampaignSpec is the submission body of POST /v1/campaigns: an ordered list
// of job specs. Results are always assembled and served in this order,
// regardless of which worker finishes which job when.
type CampaignSpec struct {
	Jobs []JobSpec `json:"jobs"`
}

// CampaignJob is the per-job view inside a CampaignStatus.
type CampaignJob struct {
	// Index is the job's position in the submitted CampaignSpec.
	Index int    `json:"index"`
	State string `json:"state"`
	// Worker is the URL of the worker that produced the result (empty for
	// cache hits and unscheduled jobs).
	Worker string `json:"worker,omitempty"`
	// CacheHit reports the result was served from the coordinator's
	// content-addressed cache without dispatching the job.
	CacheHit bool `json:"cache_hit,omitempty"`
	// Attempts counts dispatch attempts (reassignments after worker
	// failures and hedged re-dispatches increment it; a cache hit leaves
	// it 0).
	Attempts int `json:"attempts,omitempty"`
	// Hedges counts hedged re-dispatches: straggler jobs speculatively
	// re-sent to a second worker, first result winning. Safe because
	// results are content-addressed and bit-deterministic.
	Hedges int    `json:"hedges,omitempty"`
	Error  string `json:"error,omitempty"`
}

// CampaignStatus is the status document of GET /v1/campaigns/{id}.
type CampaignStatus struct {
	ID        string        `json:"id"`
	State     string        `json:"state"`
	Error     string        `json:"error,omitempty"`
	Done      int           `json:"done"`
	Total     int           `json:"total"`
	CacheHits int           `json:"cache_hits"`
	Jobs      []CampaignJob `json:"jobs"`
}

// CampaignPage is the bounded response of GET /v1/campaigns.
type CampaignPage struct {
	Campaigns []CampaignStatus `json:"campaigns"`
	Total     int              `json:"total"`
	Offset    int              `json:"offset"`
}

// CampaignResults is the response of GET /v1/campaigns/{id}/results: one raw
// result document per job, in submission order. Each element is the JSON
// value the worker's result endpoint served (or the cached copy of it) with
// surrounding whitespace trimmed — json.RawMessage carries value bytes, not
// presentation newlines — so clients can reassemble campaign output
// byte-identically to a local run.
type CampaignResults struct {
	ID      string            `json:"id"`
	Results []json.RawMessage `json:"results"`
}
