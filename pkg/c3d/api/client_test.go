package api

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

func testClient(t *testing.T, h http.Handler, opts ...ClientOption) *Client {
	t.Helper()
	ts := httptest.NewServer(h)
	t.Cleanup(ts.Close)
	return NewClient(ts.URL, append([]ClientOption{WithBackoff(time.Millisecond)}, opts...)...)
}

// TestRetryTransient checks 503s are retried with backoff until the server
// recovers, and the eventual success is surfaced normally.
func TestRetryTransient(t *testing.T) {
	var calls atomic.Int32
	cl := testClient(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			w.WriteHeader(http.StatusServiceUnavailable)
			json.NewEncoder(w).Encode(ErrorEnvelope{Error: &Error{Code: CodeQueueFull, Message: "busy"}})
			return
		}
		json.NewEncoder(w).Encode(Health{Status: "ok", Version: "test"})
	}))
	h, err := cl.Health(t.Context())
	if err != nil {
		t.Fatalf("health after transient failures: %v", err)
	}
	if h.Status != "ok" || calls.Load() != 3 {
		t.Errorf("status %q after %d calls, want ok after 3", h.Status, calls.Load())
	}
}

// TestNoRetryOnDeterministicError checks 4xx answers are surfaced
// immediately — retrying a not_found or invalid_spec would just repeat it.
func TestNoRetryOnDeterministicError(t *testing.T) {
	var calls atomic.Int32
	cl := testClient(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusNotFound)
		json.NewEncoder(w).Encode(ErrorEnvelope{Error: &Error{Code: CodeNotFound, Message: "nope"}})
	}))
	_, err := cl.Status(t.Context(), "job-000001")
	var apiErr *Error
	if !errors.As(err, &apiErr) || apiErr.Code != CodeNotFound || apiErr.HTTPStatus != http.StatusNotFound {
		t.Fatalf("err = %v, want typed not_found with HTTP 404", err)
	}
	if calls.Load() != 1 {
		t.Errorf("deterministic error retried: %d calls", calls.Load())
	}
}

// TestRetriesBounded checks WithRetries caps the attempt count and the last
// error is the one reported.
func TestRetriesBounded(t *testing.T) {
	var calls atomic.Int32
	cl := testClient(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusBadGateway)
		fmt.Fprint(w, "upstream gone") // plain text: envelope must be synthesised
	}), WithRetries(2))
	_, err := cl.Health(t.Context())
	var apiErr *Error
	if !errors.As(err, &apiErr) || apiErr.HTTPStatus != http.StatusBadGateway || apiErr.Code != CodeInternal {
		t.Fatalf("err = %v, want synthesised envelope for the plain-text 502", err)
	}
	if calls.Load() != 3 { // 1 attempt + 2 retries
		t.Errorf("%d calls, want 3", calls.Load())
	}
}

// TestSubmitBodyResentOnRetry checks a retried POST carries the full body
// again — the payload must be re-materialised per attempt, not drained by
// the first.
func TestSubmitBodyResentOnRetry(t *testing.T) {
	var calls atomic.Int32
	cl := testClient(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var spec JobSpec
		if err := json.NewDecoder(r.Body).Decode(&spec); err != nil || spec.Kind != KindExperiment {
			t.Errorf("attempt %d body unreadable: %v (%+v)", calls.Load(), err, spec)
		}
		if calls.Add(1) == 1 {
			w.WriteHeader(http.StatusServiceUnavailable)
			json.NewEncoder(w).Encode(ErrorEnvelope{Error: &Error{Code: CodeQueueFull, Message: "busy"}})
			return
		}
		w.WriteHeader(http.StatusAccepted)
		json.NewEncoder(w).Encode(SubmitResponse{ID: "job-000001", State: StateQueued})
	}))
	resp, err := cl.Submit(t.Context(), JobSpec{Kind: KindExperiment, Experiments: []string{"table1"}})
	if err != nil || resp.ID != "job-000001" {
		t.Fatalf("submit = %+v, %v", resp, err)
	}
	if calls.Load() != 2 {
		t.Errorf("%d calls, want 2", calls.Load())
	}
}

// TestContextCancelDuringBackoff checks cancellation interrupts the backoff
// sleep promptly instead of burning the remaining retries.
func TestContextCancelDuringBackoff(t *testing.T) {
	cl := testClient(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusServiceUnavailable)
	}), WithRetries(10), WithBackoff(10*time.Second))
	ctx, cancel := context.WithCancel(t.Context())
	go func() { time.Sleep(20 * time.Millisecond); cancel() }()
	start := time.Now()
	_, err := cl.Health(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Errorf("cancel took %v to interrupt the backoff", elapsed)
	}
}

// TestEventsReconnectResume checks a dropped event stream is re-established
// and the replayed prefix skipped: the callback sees every event exactly
// once even though the server replays history on the second connection.
func TestEventsReconnectResume(t *testing.T) {
	all := []Event{
		{Kind: "simulation_done", Done: 1, Total: 2},
		{Kind: "simulation_done", Done: 2, Total: 2},
		{Kind: EventJobState, State: StateDone, Job: "job-000001"},
	}
	var conns atomic.Int32
	cl := testClient(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := conns.Add(1)
		enc := json.NewEncoder(w)
		if n == 1 {
			// First connection: one event, then the connection dies.
			enc.Encode(all[0])
			panic(http.ErrAbortHandler)
		}
		for _, ev := range all {
			enc.Encode(ev)
		}
	}))
	var got []Event
	err := cl.Events(t.Context(), "job-000001", func(ev Event) error {
		got = append(got, ev)
		return nil
	})
	if err != nil {
		t.Fatalf("events: %v", err)
	}
	if conns.Load() != 2 {
		t.Fatalf("%d connections, want 2 (drop + resume)", conns.Load())
	}
	if len(got) != len(all) {
		t.Fatalf("delivered %d events, want %d exactly-once: %+v", len(got), len(all), got)
	}
	for i := range all {
		if got[i] != all[i] {
			t.Errorf("event %d = %+v, want %+v", i, got[i], all[i])
		}
	}
}

// TestResultFailedJobCarriesBytes checks the 422 path: a failed job that
// still has a result document yields both the bytes and a typed job_failed
// error.
func TestResultFailedJobCarriesBytes(t *testing.T) {
	cl := testClient(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("X-C3D-Job-Error", "verification found violations")
		w.WriteHeader(http.StatusUnprocessableEntity)
		fmt.Fprint(w, `[{"model":"base"}]`)
	}))
	raw, err := cl.Result(t.Context(), "job-000001")
	var apiErr *Error
	if !errors.As(err, &apiErr) || apiErr.Code != CodeJobFailed {
		t.Fatalf("err = %v, want job_failed", err)
	}
	if apiErr.Message != "verification found violations" {
		t.Errorf("message = %q", apiErr.Message)
	}
	if string(raw) != `[{"model":"base"}]` {
		t.Errorf("result bytes = %q", raw)
	}
}

// TestRetryDelaySchedule pins the retry backoff schedule: capped exponential
// growth with deterministic seeded jitter in [d/2, d). The golden values
// freeze the exact schedule for the default jitter seed — any change to the
// backoff arithmetic (cap, jitter hash, growth) shows up as a diff here, and
// the deep-attempt probe catches the unbounded `backoff << attempt` overflow
// this replaced.
func TestRetryDelaySchedule(t *testing.T) {
	mk := func(opts ...ClientOption) *Client {
		return NewClient("http://unused", append([]ClientOption{
			WithBackoff(100 * time.Millisecond), WithBackoffCap(time.Second),
		}, opts...)...)
	}
	cl := mk()

	golden := []time.Duration{ // attempts 0..7, seed 1, base 100ms, cap 1s
		50822465, 166428519, 282890590, 621780235,
		626968761, 864530048, 643867045, 568060533,
	}
	for i, want := range golden {
		if got := cl.retryDelay(i); got != want {
			t.Errorf("retryDelay(%d) = %d, want %d", i, got, want)
		}
	}

	// Envelope: every delay sits in [d/2, d) for the capped exponential d.
	for i := 0; i < 80; i++ {
		d := 100 * time.Millisecond << min(i, 10)
		if d > time.Second || d <= 0 {
			d = time.Second
		}
		got := cl.retryDelay(i)
		if got < d/2 || got >= d {
			t.Errorf("retryDelay(%d) = %v outside [%v, %v)", i, got, d/2, d)
		}
	}

	// Deep attempts must stay capped, never overflow to zero or negative
	// (the old `backoff << attempt` wrapped around attempt 33).
	if got := cl.retryDelay(64); got != 988747618*time.Nanosecond {
		t.Errorf("retryDelay(64) = %d, want the capped golden 988747618", got)
	}

	// Determinism across clients; divergence across seeds.
	if cl2 := mk(); cl2.retryDelay(3) != cl.retryDelay(3) {
		t.Error("same-seed clients disagree on the schedule")
	}
	if seeded := mk(WithJitterSeed(99)); seeded.retryDelay(3) != 761070807*time.Nanosecond {
		t.Errorf("retryDelay(3) with seed 99 = %d, want 761070807", seeded.retryDelay(3))
	}
}
