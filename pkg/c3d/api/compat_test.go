package api

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"
	"time"
)

// TestWireFieldNamesPinned freezes the JSON field name of every wire type:
// these names are the public API contract shared by the daemon, the
// coordinator, the SDK and external clients, so a rename here is a breaking
// wire change. The expectations are literal — if one of these assertions
// fails, you changed the wire format, not the test.
func TestWireFieldNamesPinned(t *testing.T) {
	pins := map[string][]string{
		"Params": {
			"quick", "design", "policy", "topology", "sockets", "threads",
			"accesses", "scale", "warmup", "workloads", "parallel", "stream",
			"seed", "broadcast_filter", "spec", "sampling",
		},
		"JobSpec":    {"kind", "params", "experiments", "workload", "verify"},
		"VerifySpec": {"sockets", "loads", "stores", "max_states", "base_only"},
		"JobStatus": {
			"id", "kind", "state", "error", "created", "started", "finished",
			"events",
		},
		"JobPage":        {"jobs", "total", "offset"},
		"SubmitResponse": {"id", "state"},
		"Event": {
			"kind", "state", "job", "done", "total", "states", "elapsed_ms",
			"err",
		},
		"Error":          {"code", "message", "-"},
		"ErrorEnvelope":  {"error"},
		"ExperimentInfo": {"id", "paper", "description"},
		"Capabilities": {
			"version", "designs", "topologies", "experiments", "workloads",
		},
		"Health": {
			"status", "version", "queued", "running", "finished", "workers",
			"cache",
		},
		"WorkerHealth": {"url", "healthy", "assigned", "inflight"},
		"CacheStats":   {"entries", "hits", "misses"},
		"CampaignSpec": {"jobs"},
		"CampaignJob": {
			"index", "state", "worker", "cache_hit", "attempts", "hedges",
			"error",
		},
		"CampaignStatus": {
			"id", "state", "error", "done", "total", "cache_hits", "jobs",
		},
		"CampaignPage":    {"campaigns", "total", "offset"},
		"CampaignResults": {"id", "results"},
	}
	types := map[string]reflect.Type{
		"Params":          reflect.TypeOf(Params{}),
		"JobSpec":         reflect.TypeOf(JobSpec{}),
		"VerifySpec":      reflect.TypeOf(VerifySpec{}),
		"JobStatus":       reflect.TypeOf(JobStatus{}),
		"JobPage":         reflect.TypeOf(JobPage{}),
		"SubmitResponse":  reflect.TypeOf(SubmitResponse{}),
		"Event":           reflect.TypeOf(Event{}),
		"Error":           reflect.TypeOf(Error{}),
		"ErrorEnvelope":   reflect.TypeOf(ErrorEnvelope{}),
		"ExperimentInfo":  reflect.TypeOf(ExperimentInfo{}),
		"Capabilities":    reflect.TypeOf(Capabilities{}),
		"Health":          reflect.TypeOf(Health{}),
		"WorkerHealth":    reflect.TypeOf(WorkerHealth{}),
		"CacheStats":      reflect.TypeOf(CacheStats{}),
		"CampaignSpec":    reflect.TypeOf(CampaignSpec{}),
		"CampaignJob":     reflect.TypeOf(CampaignJob{}),
		"CampaignStatus":  reflect.TypeOf(CampaignStatus{}),
		"CampaignPage":    reflect.TypeOf(CampaignPage{}),
		"CampaignResults": reflect.TypeOf(CampaignResults{}),
	}
	for name, want := range pins {
		typ, ok := types[name]
		if !ok {
			t.Fatalf("no reflect entry for pinned type %s", name)
		}
		var got []string
		for i := 0; i < typ.NumField(); i++ {
			tag := typ.Field(i).Tag.Get("json")
			got = append(got, strings.Split(tag, ",")[0])
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s wire fields changed:\n got %v\nwant %v", name, got, want)
		}
	}
}

// TestJobSpecRoundTrip pins the serialised form of a fully-populated spec
// and checks decode(encode(spec)) is the identity — the compat guarantee
// clients rely on instead of hand-rolling JSON.
func TestJobSpecRoundTrip(t *testing.T) {
	warm := 0.5
	stream := true
	spec := JobSpec{
		Kind: KindExperiment,
		Params: Params{
			Quick:           true,
			Design:          "c3d",
			Policy:          "FT1",
			Topology:        "mesh",
			Sockets:         8,
			Threads:         16,
			Accesses:        2000,
			Scale:           512,
			Warmup:          &warm,
			Workloads:       []string{"streamcluster", "canneal"},
			Parallelism:     4,
			Stream:          &stream,
			Seed:            7,
			BroadcastFilter: true,
			Spec:            json.RawMessage(`{"version":1,"name":"mix","base":"streamcluster"}`),
		},
		Experiments: []string{"fig6", "table1"},
		Workload:    "streamcluster",
		Verify:      VerifySpec{Sockets: 2, LoadsPerCore: 1, StoresPerCore: 1, MaxStates: 10, BaseOnly: true},
	}
	const want = `{"kind":"experiment","params":{"quick":true,"design":"c3d","policy":"FT1","topology":"mesh","sockets":8,"threads":16,"accesses":2000,"scale":512,"warmup":0.5,"workloads":["streamcluster","canneal"],"parallel":4,"stream":true,"seed":7,"broadcast_filter":true,"spec":{"version":1,"name":"mix","base":"streamcluster"}},"experiments":["fig6","table1"],"workload":"streamcluster","verify":{"sockets":2,"loads":1,"stores":1,"max_states":10,"base_only":true}}`
	got, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != want {
		t.Errorf("JobSpec wire bytes drifted:\n got %s\nwant %s", got, want)
	}
	var back JobSpec
	if err := json.Unmarshal(got, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, spec) {
		t.Errorf("round trip not identity:\n got %+v\nwant %+v", back, spec)
	}
}

// TestOmittedDefaultsStayOmitted pins that zero-valued optional fields do
// not appear on the wire — the omitempty contract old clients depend on.
func TestOmittedDefaultsStayOmitted(t *testing.T) {
	got, err := json.Marshal(JobSpec{Kind: KindVerify})
	if err != nil {
		t.Fatal(err)
	}
	// omitempty does not elide structs, so params and verify always appear —
	// pinned because clients may rely on their presence.
	if want := `{"kind":"verify","params":{},"verify":{}}`; string(got) != want {
		t.Errorf("minimal JobSpec = %s, want %s", got, want)
	}
	st := JobStatus{ID: "job-000001", Kind: KindSimulate, State: StateQueued,
		Created: time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC)}
	gotSt, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	if want := `{"id":"job-000001","kind":"simulate","state":"queued","created":"2026-01-02T03:04:05Z","events":0}`; string(gotSt) != want {
		t.Errorf("minimal JobStatus = %s, want %s", gotSt, want)
	}
}

// TestErrorEnvelopeShape pins the uniform error body and the Error error
// string.
func TestErrorEnvelopeShape(t *testing.T) {
	env := ErrorEnvelope{Error: &Error{Code: CodeNotFound, Message: `unknown job "job-000042"`}}
	got, err := json.Marshal(env)
	if err != nil {
		t.Fatal(err)
	}
	if want := `{"error":{"code":"not_found","message":"unknown job \"job-000042\""}}`; string(got) != want {
		t.Errorf("envelope = %s, want %s", got, want)
	}
	if want := `not_found: unknown job "job-000042"`; env.Error.Error() != want {
		t.Errorf("Error() = %q, want %q", env.Error.Error(), want)
	}
}

func TestTerminal(t *testing.T) {
	for state, want := range map[string]bool{
		StateQueued: false, StateRunning: false,
		StateDone: true, StateFailed: true, StateCancelled: true,
	} {
		if Terminal(state) != want {
			t.Errorf("Terminal(%q) = %v, want %v", state, !want, want)
		}
	}
}

func TestCapabilitiesSupportsSpec(t *testing.T) {
	caps := &Capabilities{
		Designs:     []string{"baseline", "c3d"},
		Topologies:  []string{"p2p", "ring"},
		Experiments: []ExperimentInfo{{ID: "fig6"}, {ID: "table1"}},
		Workloads:   []string{"streamcluster"},
	}
	ok := []JobSpec{
		{Kind: KindExperiment, Experiments: []string{"fig6", "all"}},
		{Kind: KindSimulate, Workload: "streamcluster", Params: Params{Design: "c3d", Topology: "ring"}},
		// A workload-spec document defines workloads the capability list
		// cannot know; name checks defer to the server.
		{Kind: KindSimulate, Workload: "mix", Params: Params{Spec: json.RawMessage(`{"version":1,"name":"mix","base":"x"}`)}},
		{Kind: KindExperiment, Params: Params{Workloads: []string{"mix"}, Spec: json.RawMessage(`{"version":1,"name":"mix","base":"x"}`)}},
	}
	for _, spec := range ok {
		if err := caps.SupportsSpec(spec); err != nil {
			t.Errorf("SupportsSpec(%+v) = %v, want nil", spec, err)
		}
	}
	bad := []JobSpec{
		{Kind: KindExperiment, Experiments: []string{"fig99"}},
		{Kind: KindSimulate, Workload: "nonesuch"},
		{Kind: KindSimulate, Workload: "streamcluster", Params: Params{Design: "warp-drive"}},
		{Kind: KindSimulate, Workload: "streamcluster", Params: Params{Topology: "moebius"}},
		{Kind: KindExperiment, Params: Params{Workloads: []string{"nonesuch"}}},
	}
	for _, spec := range bad {
		if err := caps.SupportsSpec(spec); err == nil {
			t.Errorf("SupportsSpec(%+v) = nil, want error", spec)
		}
	}
}
