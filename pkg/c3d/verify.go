package c3d

import (
	"context"
	"encoding/json"
	"io"

	"c3d/internal/experiments"
)

// VerifyRequest parameterises protocol verification (§IV-C). The zero value
// verifies the default configurations: 2- and 3-socket machines, one load
// and one store per core, both protocol variants, exhaustively.
type VerifyRequest struct {
	// Sockets is the largest socket count to verify (default 3; the
	// 2-socket configuration is always included).
	Sockets int
	// LoadsPerCore and StoresPerCore bound each core's operations
	// (default 1 each).
	LoadsPerCore  int
	StoresPerCore int
	// MaxStates truncates the search (0 = exhaustive).
	MaxStates int
	// BaseOnly skips the c3d-full-dir protocol variant.
	BaseOnly bool
}

// Verify model-checks the C3D coherence protocol: SWMR, the data-value
// invariant (per-location sequential consistency) and absence of deadlock,
// by exhaustive explicit-state exploration. Worker count comes from
// WithParallelism; reports are bit-identical at any value.
//
// Cancelling the context aborts the searches; the error is ctx's and the
// returned result holds the partial reports explored so far (marked
// Interrupted).
func (s *Session) Verify(ctx context.Context, req VerifyRequest) (*VerifyResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	cfg := experiments.VerifyConfig{
		Sockets:               req.Sockets,
		LoadsPerCore:          req.LoadsPerCore,
		StoresPerCore:         req.StoresPerCore,
		MaxStates:             req.MaxStates,
		IncludeFullDirVariant: !req.BaseOnly,
		Parallelism:           s.cfg.parallelism,
		Progress:              s.cfg.progress,
	}
	if cfg.Sockets <= 0 {
		cfg.Sockets = 3
	}
	if cfg.LoadsPerCore <= 0 {
		cfg.LoadsPerCore = 1
	}
	if cfg.StoresPerCore <= 0 {
		cfg.StoresPerCore = 1
	}
	result, err := experiments.Verify(ctx, cfg)
	if err != nil {
		return &result, err
	}
	return &result, nil
}

// WriteReportsJSON writes model-checking reports in the canonical
// machine-readable form: a two-space-indented JSON array with no wall-clock
// fields, so reports can be compared byte-for-byte across runs, machines and
// parallelism levels. cmd/c3dcheck -json and the c3dd result endpoint both
// emit exactly these bytes.
func WriteReportsJSON(w io.Writer, reports []Report) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(reports)
}
