package c3d

import (
	"context"
	"encoding/json"
	"fmt"
	"io"

	"c3d/internal/experiments"
)

// ExperimentInfo describes one runnable experiment of the paper's
// evaluation.
type ExperimentInfo struct {
	// ID is the identifier accepted by Experiment ("table1", "fig6", ...).
	ID string `json:"id"`
	// Paper names the table or figure being reproduced.
	Paper string `json:"paper"`
	// Description is a one-line summary.
	Description string `json:"description"`
}

// Experiments lists every experiment in presentation order.
func Experiments() []ExperimentInfo {
	entries := experiments.All()
	out := make([]ExperimentInfo, len(entries))
	for i, e := range entries {
		out[i] = ExperimentInfo{ID: e.ID, Paper: e.Paper, Description: e.Description}
	}
	return out
}

// ExperimentIDs lists every experiment id in presentation order.
func ExperimentIDs() []string { return experiments.IDs() }

// ExperimentResult is one experiment's outcome: its identity plus the
// rendered result table. The JSON form is the wire format shared by
// `c3dexp -json` and the c3dd result endpoint — byte-identical between them
// by construction (both call WriteResultsJSON).
type ExperimentResult struct {
	ID          string `json:"id"`
	Paper       string `json:"paper"`
	Description string `json:"description"`
	Table       *Table `json:"table"`
}

// Experiment runs one experiment by id under the session configuration.
// Results are deterministic: bit-identical at any WithParallelism value and
// across the streaming/materialised trace paths.
//
// Cancelling the context stops the campaign early: no new simulation starts,
// in-flight simulations abort between accesses, and ctx's error is returned.
func (s *Session) Experiment(ctx context.Context, id string) (*ExperimentResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	entry, err := experiments.Lookup(id)
	if err != nil {
		return nil, err
	}
	result, err := entry.Run(ctx, s.cfg.experimentsConfig())
	if err != nil {
		return nil, err
	}
	return &ExperimentResult{
		ID:          entry.ID,
		Paper:       entry.Paper,
		Description: entry.Description,
		Table:       result.Table(),
	}, nil
}

// Sweep runs a sequence of experiments (all of them when ids is empty or
// contains "all") and returns one result per experiment, in presentation
// order. It stops at the first failing experiment.
func (s *Session) Sweep(ctx context.Context, ids ...string) ([]ExperimentResult, error) {
	expand := len(ids) == 0
	for _, id := range ids {
		if id == "all" {
			expand = true
			break
		}
	}
	if expand {
		ids = experiments.IDs()
	}
	out := make([]ExperimentResult, 0, len(ids))
	for _, id := range ids {
		res, err := s.Experiment(ctx, id)
		if err != nil {
			return out, fmt.Errorf("experiment %s: %w", id, err)
		}
		out = append(out, *res)
	}
	return out, nil
}

// WriteResultsJSON writes experiment results in the canonical machine-
// readable form: a two-space-indented JSON array. cmd/c3dexp -json and the
// c3dd result endpoint both emit exactly these bytes, which is what makes
// "server result == CLI result" checkable with cmp.
func WriteResultsJSON(w io.Writer, results []ExperimentResult) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(results)
}
