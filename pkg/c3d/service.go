package c3d

import (
	"fmt"

	"c3d/pkg/c3d/api"
)

// CurrentCapabilities reports what this build of the simulator can run —
// registered designs, fabric topologies, experiments and workloads, plus the
// build version — in the wire shape served by GET /v1/capabilities. The
// daemon and the campaign coordinator both publish exactly this document,
// and remote clients use it to validate job specs eagerly, the way the SDK's
// options validate locally.
func CurrentCapabilities() api.Capabilities {
	caps := api.Capabilities{Version: Version()}
	for _, d := range Designs() {
		caps.Designs = append(caps.Designs, string(d))
	}
	for _, t := range Topologies() {
		caps.Topologies = append(caps.Topologies, string(t))
	}
	for _, e := range Experiments() {
		caps.Experiments = append(caps.Experiments, api.ExperimentInfo{
			ID:          e.ID,
			Paper:       e.Paper,
			Description: e.Description,
		})
	}
	for _, w := range Workloads() {
		caps.Workloads = append(caps.Workloads, w.Name)
	}
	return caps
}

// ValidateJobSpec rejects malformed job specs the way the daemon's
// submission endpoint does, so a queued job can only fail for run-time
// reasons. Building (and discarding) the session runs the SDK's full option
// validation — unknown workloads, out-of-range warm-up, unhostable
// topology/socket shapes — not just the enumerated-field parse. The daemon
// and the campaign coordinator share this one door check.
func ValidateJobSpec(spec api.JobSpec) error {
	sess, err := Params(spec.Params).Session()
	if err != nil {
		return err
	}
	switch spec.Kind {
	case api.KindExperiment:
		known := make(map[string]bool)
		for _, id := range ExperimentIDs() {
			known[id] = true
		}
		for _, id := range spec.Experiments {
			if id != "all" && !known[id] {
				return fmt.Errorf("unknown experiment %q", id)
			}
		}
	case api.KindSimulate:
		// resolveWorkload accepts what Simulate would: a registry or spec
		// name, or an empty name when the params carry a workload-spec
		// document. An empty name without a spec is still rejected.
		if _, err := sess.cfg.resolveWorkload(spec.Workload); err != nil {
			return err
		}
	case api.KindVerify:
		if spec.Verify.Sockets < 0 || spec.Verify.MaxStates < 0 {
			return fmt.Errorf("negative verify bounds")
		}
	default:
		return fmt.Errorf("unknown job kind %q (want experiment, simulate or verify)", spec.Kind)
	}
	return nil
}
