package c3d

import (
	"fmt"

	"c3d/internal/experiments"
	"c3d/internal/interconnect"
	"c3d/internal/numa"
	"c3d/internal/sample"
	"c3d/internal/workload"
	"c3d/internal/wspec"
)

// Option configures a Session (and, via Simulate's variadic parameter,
// a single call).
type Option func(*config)

// config is the resolved option set. Zero-valued fields mean "use the
// layer's default"; explicit choices are tracked with *Set flags where the
// zero value is itself meaningful.
type config struct {
	design    Design
	designSet bool

	sockets        int
	coresPerSocket int
	topology       Topology
	threads        int
	scale          int
	accesses       int

	warmup    float64
	warmupSet bool

	sampling SamplingSpec

	policy    Policy
	policySet bool

	parallelism int

	streaming    bool
	streamingSet bool

	seed      int64
	workloads []string
	quick     bool

	broadcastFilter bool

	// specDoc is the raw workload-spec document from WithWorkloadSpec;
	// validate() compiles it once into spec. specErr carries a
	// WithWorkloadSpecFile read failure until validation can report it.
	specDoc []byte
	spec    *wspec.Compiled
	specErr error

	progress func(Event)
}

func defaultConfig() config {
	return config{design: C3D}
}

// defaultSockets is the machine shape a session assumes when WithSockets is
// not given — the paper's 4-socket configuration.
const defaultSockets = 4

// effectiveSockets resolves the socket count the session's own machines use:
// the explicit option, or the default. Shared by option validation and
// machineConfigFor so the two can never disagree.
func (c config) effectiveSockets() int {
	if c.sockets > 0 {
		return c.sockets
	}
	return defaultSockets
}

func (c *config) validate() error {
	if c.specErr != nil {
		return c.specErr
	}
	if c.spec == nil && len(c.specDoc) > 0 {
		compiled, err := wspec.Load(c.specDoc)
		if err != nil {
			return fmt.Errorf("c3d: %w", err)
		}
		c.spec = compiled
	}
	switch {
	case c.sockets < 0:
		return fmt.Errorf("c3d: negative socket count %d", c.sockets)
	case c.threads < 0:
		return fmt.Errorf("c3d: negative thread count %d", c.threads)
	case c.scale < 0:
		return fmt.Errorf("c3d: negative scale %d", c.scale)
	case c.accesses < 0:
		return fmt.Errorf("c3d: negative accesses per thread %d", c.accesses)
	case c.warmupSet && (c.warmup < 0 || c.warmup >= 1):
		return fmt.Errorf("c3d: warm-up fraction %v outside [0,1)", c.warmup)
	case c.parallelism < 0:
		return fmt.Errorf("c3d: negative parallelism %d", c.parallelism)
	}
	if err := c.sampling.Validate(); err != nil {
		return fmt.Errorf("c3d: %w", err)
	}
	for _, name := range c.workloads {
		if _, err := c.resolveWorkload(name); err != nil {
			return err
		}
	}
	// Eagerly reject shapes no machine could host, using the session's
	// socket default. Experiments that fix their own socket counts (Fig. 7's
	// 2-socket machine, the scaling sweep) re-validate per machine before
	// construction, so a session-level pass here is necessary, not
	// sufficient.
	sockets := c.effectiveSockets()
	if c.topology != "" {
		if err := interconnect.SupportsSockets(c.topology, sockets); err != nil {
			return fmt.Errorf("c3d: %w", err)
		}
	} else if _, err := interconnect.DefaultTopology(sockets); err != nil {
		return fmt.Errorf("c3d: %w", err)
	}
	return nil
}

// WithDesign selects the coherence design for Simulate (default C3D). The
// experiment campaigns fix their own design sets and ignore it.
func WithDesign(d Design) Option {
	return func(c *config) { c.design = d; c.designSet = true }
}

// WithSockets sets the socket count (default: 4, or what the experiment
// fixes). The built-in fabric topologies host up to 16 sockets.
func WithSockets(n int) Option { return func(c *config) { c.sockets = n } }

// WithTopology selects the inter-socket fabric topology (default: the
// socket count's default — point-to-point for 2 sockets, ring beyond). The
// combination with the socket count is validated eagerly: a topology that
// cannot host the session's machine shape is reported by New, not mid-run.
func WithTopology(t Topology) Option { return func(c *config) { c.topology = t } }

// WithCoresPerSocket overrides the derived cores-per-socket count.
func WithCoresPerSocket(n int) Option { return func(c *config) { c.coresPerSocket = n } }

// WithThreads sets the workload thread count (default: the workload's native
// count for Simulate, the experiment configuration's for campaigns).
func WithThreads(n int) Option { return func(c *config) { c.threads = n } }

// WithScale sets the capacity/footprint scale factor shared by machine and
// workload (default workload.DefaultScale).
func WithScale(n int) Option { return func(c *config) { c.scale = n } }

// WithAccesses sets accesses per thread (default: the workload's native
// count).
func WithAccesses(n int) Option { return func(c *config) { c.accesses = n } }

// WithWarmup sets the warm-up fraction of each thread's stream (default
// 0.25).
func WithWarmup(f float64) Option {
	return func(c *config) { c.warmup = f; c.warmupSet = true }
}

// WithSampling switches simulations and experiment campaigns to SMARTS-style
// sampled execution under the given schedule (parse one with ParseSampling;
// the zero spec restores full detailed simulation). Sampled results carry a
// Sampling section with per-metric 95% confidence half-widths, run several
// times faster than full simulation, and remain byte-identical across
// parallelism for a fixed (config, seed, spec). The spec is validated
// eagerly: New reports a malformed schedule, not a mid-campaign job failure.
func WithSampling(spec SamplingSpec) Option {
	return func(c *config) { c.sampling = spec }
}

// ParseSampling parses a sampling schedule spec of the form
// "stretch=N,warm=N,win=N[,seed=S]" (all lengths per-thread record counts;
// see internal/sample for the schedule semantics). The empty string parses
// to the zero spec, meaning full detailed simulation.
func ParseSampling(text string) (SamplingSpec, error) {
	spec, err := sample.Parse(text)
	if err != nil {
		return SamplingSpec{}, fmt.Errorf("c3d: %w", err)
	}
	return spec, nil
}

// WithPolicy pins the NUMA placement policy (default: the workload's
// preferred policy).
func WithPolicy(p Policy) Option {
	return func(c *config) { c.policy = p; c.policySet = true }
}

// WithParallelism bounds concurrent simulations / model-checker workers
// (0 = GOMAXPROCS). Results are bit-identical at any value.
func WithParallelism(n int) Option { return func(c *config) { c.parallelism = n } }

// WithStreaming chooses between streaming generation (bounded memory at any
// stream length) and materialised traces (shared across designs via the
// trace cache). Results are bit-identical either way. Default: streaming for
// Simulate, materialised for experiment campaigns.
func WithStreaming(on bool) Option {
	return func(c *config) { c.streaming = on; c.streamingSet = true }
}

// WithSeed offsets workload generation (0 reproduces the default runs).
func WithSeed(seed int64) Option { return func(c *config) { c.seed = seed } }

// WithWorkloads restricts experiment campaigns to a workload subset
// (default: the paper's nine).
func WithWorkloads(names ...string) Option {
	return func(c *config) { c.workloads = append([]string(nil), names...) }
}

// WithQuick switches experiment campaigns to the reduced quick
// configuration (minutes-scale instead of paper-scale).
func WithQuick() Option { return func(c *config) { c.quick = true } }

// WithBroadcastFilter enables the §IV-D private-page broadcast filter
// (meaningful for the C3D design only).
func WithBroadcastFilter(on bool) Option {
	return func(c *config) { c.broadcastFilter = on }
}

// WithProgress registers a structured progress callback. Callbacks are
// serialised; Event.String reproduces the classic CLI progress lines.
func WithProgress(fn func(Event)) Option { return func(c *config) { c.progress = fn } }

// experimentsConfig resolves the session options into an experiment
// campaign configuration.
func (c config) experimentsConfig() experiments.Config {
	cfg := experiments.DefaultConfig()
	if c.quick {
		cfg = experiments.QuickConfig()
	}
	if c.sockets > 0 {
		cfg.Sockets = c.sockets
	}
	if c.threads > 0 {
		cfg.Threads = c.threads
	}
	if c.coresPerSocket > 0 {
		cfg.CoresPerSocket = c.coresPerSocket
	}
	if c.accesses > 0 {
		cfg.AccessesPerThread = c.accesses
	}
	if c.scale > 0 {
		cfg.Scale = c.scale
	}
	if c.warmupSet {
		cfg.WarmupFraction = c.warmup
	}
	if len(c.workloads) > 0 {
		cfg.Workloads = append([]string(nil), c.workloads...)
	}
	if c.spec != nil {
		// A compiled spec document joins the campaign as an extra resolvable
		// workload; with no explicit subset it *is* the suite, which is how
		// scaling and fig experiments run a spec in place of the registry
		// workloads.
		cfg.Extra = []workload.Spec{c.spec.Spec()}
		if len(c.workloads) == 0 {
			cfg.Workloads = []string{c.spec.Name()}
		}
	}
	cfg.Topology = c.topology
	cfg.Parallelism = c.parallelism
	cfg.Streaming = c.streamingSet && c.streaming
	cfg.Seed = c.seed
	cfg.Sampling = c.sampling.String()
	cfg.Progress = c.progress
	return cfg
}

// workloadPolicy resolves the placement policy for a workload spec.
func (c config) workloadPolicy(spec workload.Spec) numa.Policy {
	if c.policySet {
		return c.policy
	}
	return spec.PreferredPolicy
}

// resolveWorkload resolves a workload name against the session: the
// compiled workload-spec document when one is set and the name is empty or
// the spec's own, else the open registry.
func (c *config) resolveWorkload(name string) (workload.Spec, error) {
	if c.spec != nil && (name == "" || name == c.spec.Name()) {
		return c.spec.Spec(), nil
	}
	if name == "" {
		return workload.Spec{}, fmt.Errorf("c3d: no workload named and no workload spec set")
	}
	s, err := workload.Get(name)
	if err != nil {
		if c.spec != nil {
			return workload.Spec{}, fmt.Errorf("c3d: %w; the session spec defines %q", err, c.spec.Name())
		}
		return workload.Spec{}, fmt.Errorf("c3d: %w", err)
	}
	return s, nil
}
