package c3d

import (
	"bytes"
	"context"
	"os"
	"testing"
)

// TestFig6QuickJSONMatchesGolden pins the bytes of `c3dexp -exp fig6 -quick
// -json` against a fixture captured before the design-registry and topology
// refactor: the paper configurations must be provably unaffected by how
// dispatch is wired. The test reproduces the CLI's exact code path (session
// from a quick Params, Experiment, WriteResultsJSON), so a mismatch here is
// a mismatch in shipped output.
//
// If a deliberate simulator change moves these numbers, regenerate with:
//
//	go run ./cmd/c3dexp -exp fig6 -quick -json > pkg/c3d/testdata/fig6-quick-golden.json
//
// and say so in the commit message — this file guards against accidental
// drift, not against intentional model changes.
func TestFig6QuickJSONMatchesGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("full quick campaign (45 simulations) skipped in -short mode")
	}
	want, err := os.ReadFile("testdata/fig6-quick-golden.json")
	if err != nil {
		t.Fatal(err)
	}
	sess, err := (Params{Quick: true}).Session()
	if err != nil {
		t.Fatal(err)
	}
	res, err := sess.Experiment(context.Background(), "fig6")
	if err != nil {
		t.Fatal(err)
	}
	var got bytes.Buffer
	if err := WriteResultsJSON(&got, []ExperimentResult{*res}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want) {
		t.Errorf("fig6 quick JSON drifted from the committed golden bytes:\ngot:  %s\nwant: %s", got.Bytes(), want)
	}
}
