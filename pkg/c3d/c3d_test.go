package c3d

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"os"
	"strings"
	"sync/atomic"
	"testing"

	"c3d/internal/experiments"
	"c3d/internal/machine"
	"c3d/internal/workload"
)

// TestNewValidatesOptions checks impossible configurations fail at New, not
// mid-run.
func TestNewValidatesOptions(t *testing.T) {
	cases := map[string][]Option{
		"negative sockets":  {WithSockets(-1)},
		"negative threads":  {WithThreads(-4)},
		"negative scale":    {WithScale(-64)},
		"negative accesses": {WithAccesses(-1)},
		"warmup >= 1":       {WithWarmup(1.5)},
		"unknown workload":  {WithWorkloads("streamcluster", "not-a-workload")},
	}
	for name, opts := range cases {
		if _, err := New(opts...); err == nil {
			t.Errorf("%s: New accepted the configuration", name)
		}
	}
	if _, err := New(WithSockets(4), WithDesign(C3D), WithQuick()); err != nil {
		t.Fatalf("valid configuration rejected: %v", err)
	}
}

// TestNewMachineWrapsPanic checks the machine.New panic is converted into an
// error at the SDK boundary.
func TestNewMachineWrapsPanic(t *testing.T) {
	if _, err := newMachine(machine.Config{}); err == nil {
		t.Fatal("newMachine accepted the zero configuration")
	} else if !strings.Contains(err.Error(), "invalid machine configuration") {
		t.Fatalf("unexpected error: %v", err)
	}
}

// TestSimulateMatchesDirectRun is the SDK parity contract: Simulate must be
// bit-identical to assembling the machine and workload by hand the way the
// pre-SDK CLI did.
func TestSimulateMatchesDirectRun(t *testing.T) {
	const (
		threads  = 8
		scale    = 512
		accesses = 2000
	)
	sess, err := New(
		WithDesign(C3D),
		WithSockets(4),
		WithThreads(threads),
		WithScale(scale),
		WithAccesses(accesses),
	)
	if err != nil {
		t.Fatal(err)
	}
	got, err := sess.Simulate(t.Context(), "streamcluster")
	if err != nil {
		t.Fatal(err)
	}

	spec := workload.MustGet("streamcluster")
	mcfg := machine.DefaultConfig(4, machine.C3D)
	mcfg.Scale = scale
	mcfg.MemPolicy = spec.PreferredPolicy
	src, err := workload.NewSource(spec, workload.Options{
		Threads: threads, Scale: scale, AccessesPerThread: accesses,
	})
	if err != nil {
		t.Fatal(err)
	}
	want, err := machine.New(mcfg).RunSource(t.Context(), src, machine.DefaultRunOptions())
	if err != nil {
		t.Fatal(err)
	}

	gj, _ := json.Marshal(got.RunResult)
	wj, _ := json.Marshal(want)
	if !bytes.Equal(gj, wj) {
		t.Fatalf("SDK result differs from direct run:\nsdk:    %s\ndirect: %s", gj, wj)
	}
	if got.ThreadsClamped || got.EffectiveThreads != threads {
		t.Fatalf("unexpected thread resolution: %+v", got)
	}
}

// TestSimulateStreamingMatchesMaterialised checks WithStreaming(false) is
// bit-identical to the default streaming path.
func TestSimulateStreamingMatchesMaterialised(t *testing.T) {
	run := func(streaming bool) RunResult {
		sess, err := New(WithThreads(8), WithScale(512), WithAccesses(1500), WithStreaming(streaming))
		if err != nil {
			t.Fatal(err)
		}
		res, err := sess.Simulate(t.Context(), "canneal")
		if err != nil {
			t.Fatal(err)
		}
		if res.Streamed != streaming {
			t.Fatalf("Streamed = %v, want %v", res.Streamed, streaming)
		}
		return res.RunResult
	}
	a, _ := json.Marshal(run(true))
	b, _ := json.Marshal(run(false))
	if !bytes.Equal(a, b) {
		t.Fatalf("streaming and materialised runs differ:\n%s\n%s", a, b)
	}
}

// TestSimulateClampsThreads checks an over-wide request is clamped and the
// clamp surfaced, instead of erroring or lying.
func TestSimulateClampsThreads(t *testing.T) {
	sess, err := New(WithSockets(2), WithCoresPerSocket(4), WithThreads(64),
		WithScale(512), WithAccesses(500))
	if err != nil {
		t.Fatal(err)
	}
	res, err := sess.Simulate(t.Context(), "streamcluster")
	if err != nil {
		t.Fatal(err)
	}
	if !res.ThreadsClamped || res.RequestedThreads != 64 || res.EffectiveThreads != 8 {
		t.Fatalf("clamp not surfaced: %+v", res)
	}
}

// TestExperimentCancelledStopsSweepEarly is the acceptance gate for context
// cancellation: cancelling mid-campaign must abort promptly, before the
// remaining simulations run.
func TestExperimentCancelledStopsSweepEarly(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var done atomic.Int32
	sess, err := New(
		WithQuick(),
		WithAccesses(4000),
		WithParallelism(1), // serialise so "stopped early" is observable
		WithProgress(func(e Event) {
			if done.Add(1) == 1 {
				cancel() // cancel after the first completed simulation
			}
		}),
	)
	if err != nil {
		t.Fatal(err)
	}
	// fig6 is 6 designs x 9 workloads = 54 simulations.
	_, err = sess.Experiment(ctx, "fig6")
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := done.Load(); n >= 54 {
		t.Fatalf("campaign ran all %d simulations despite cancellation", n)
	}
}

// TestVerifyCancelled checks a cancelled verification returns ctx's error
// with partial, Interrupted-marked reports.
func TestVerifyCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	sess, err := New()
	if err != nil {
		t.Fatal(err)
	}
	res, err := sess.Verify(ctx, VerifyRequest{Sockets: 2})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	for _, rep := range res.Reports {
		if !rep.Interrupted {
			t.Errorf("report %s not marked interrupted", rep.Model)
		}
	}
}

// TestExperimentMatchesInternalRun checks the SDK routes through the same
// experiment code path as direct internal use.
func TestExperimentMatchesInternalRun(t *testing.T) {
	sess, err := New(WithQuick(), WithWorkloads("streamcluster"), WithAccesses(2000))
	if err != nil {
		t.Fatal(err)
	}
	got, err := sess.Experiment(t.Context(), "table1")
	if err != nil {
		t.Fatal(err)
	}

	cfg := experiments.QuickConfig()
	cfg.Workloads = []string{"streamcluster"}
	cfg.AccessesPerThread = 2000
	want, err := experiments.TableI(t.Context(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	gj, _ := json.Marshal(got.Table)
	wj, _ := json.Marshal(want.Table())
	if !bytes.Equal(gj, wj) {
		t.Fatalf("SDK experiment differs from internal run:\n%s\n%s", gj, wj)
	}
}

// TestTraceRoundTripThroughSDK checks TraceSource -> TraceEncode ->
// OpenTrace preserves the stream statistics, and that encoding observes
// cancellation.
func TestTraceRoundTripThroughSDK(t *testing.T) {
	sess, err := New(WithThreads(4), WithAccesses(800), WithScale(512))
	if err != nil {
		t.Fatal(err)
	}
	src, err := sess.TraceSource("streamcluster")
	if err != nil {
		t.Fatal(err)
	}
	wantStats, err := ComputeTraceStats(t.Context(), src)
	if err != nil {
		t.Fatal(err)
	}

	path := t.TempDir() + "/t.c3dt"
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := TraceEncode(t.Context(), f, src, TraceV2); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	tf, err := OpenTrace(path)
	if err != nil {
		t.Fatal(err)
	}
	defer tf.Close()
	gotStats, err := ComputeTraceStats(t.Context(), tf)
	if err != nil {
		t.Fatal(err)
	}
	if gotStats != wantStats {
		t.Fatalf("round-trip stats differ:\n%+v\n%+v", gotStats, wantStats)
	}

	// Cancelled encode must fail, not spin through the whole stream.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var buf bytes.Buffer
	if err := TraceEncode(ctx, &buf, src, TraceV2); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled encode: err = %v, want context.Canceled", err)
	}
}

// TestParamsValidation checks Params surfaces bad enumerated values.
func TestParamsValidation(t *testing.T) {
	if _, err := (Params{Design: "warp-drive"}).Options(); err == nil {
		t.Error("bad design accepted")
	}
	if _, err := (Params{Policy: "NUMA9000"}).Options(); err == nil {
		t.Error("bad policy accepted")
	}
	if _, err := (Params{Topology: "moebius"}).Options(); err == nil {
		t.Error("bad topology accepted")
	}
	stream := true
	opts, err := (Params{Quick: true, Design: "c3d", Policy: "FT2", Topology: "p2p", Sockets: 2,
		Threads: 8, Accesses: 100, Scale: 512, Parallelism: 2, Stream: &stream,
		Seed: 42, Workloads: []string{"streamcluster"}}).Options()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(opts...); err != nil {
		t.Fatal(err)
	}
}

// TestTopologyOptions covers the WithTopology/WithSockets surface: eager
// rejection of shapes no machine hosts, and the topology landing in the
// simulation result.
func TestTopologyOptions(t *testing.T) {
	// Ring cannot host the 2-socket shape; eagerly rejected at New.
	if _, err := New(WithSockets(2), WithTopology(Ring)); err == nil {
		t.Error("ring@2 accepted")
	}
	// No built-in topology hosts 32 sockets.
	if _, err := New(WithSockets(32)); err == nil {
		t.Error("32 sockets accepted without a hosting topology")
	}
	if _, err := (Params{Topology: "ring", Sockets: 2}).Session(); err == nil {
		t.Error("params ring@2 accepted")
	}

	sess, err := New(WithSockets(8), WithTopology(Mesh), WithThreads(8),
		WithAccesses(2000), WithScale(512))
	if err != nil {
		t.Fatal(err)
	}
	res, err := sess.Simulate(context.Background(), "streamcluster")
	if err != nil {
		t.Fatal(err)
	}
	if res.Sockets != 8 || res.Topology != Mesh {
		t.Errorf("simulate on mesh@8 reported %d sockets, topology %q", res.Sockets, res.Topology)
	}
	// Defaults resolve to the paper's shapes.
	mcfg, err := sess.MachineConfigFor("streamcluster")
	if err != nil {
		t.Fatal(err)
	}
	if topo, err := mcfg.ResolvedTopology(); err != nil || topo != Mesh {
		t.Errorf("machine config topology = %v, %v; want mesh", topo, err)
	}
	if got := Topologies(); len(got) != 4 || got[0] != PointToPoint || got[3] != FullyConnected {
		t.Errorf("Topologies() = %v", got)
	}
	if topo, err := ParseTopology("full"); err != nil || topo != FullyConnected {
		t.Errorf("ParseTopology(full) = %v, %v", topo, err)
	}
}

// TestScalingExperimentViaSDK runs the registered scaling experiment through
// the Session facade — the same path c3dexp and the daemon use.
func TestScalingExperimentViaSDK(t *testing.T) {
	sess, err := New(WithQuick(), WithWorkloads("streamcluster"), WithAccesses(2000))
	if err != nil {
		t.Fatal(err)
	}
	res, err := sess.Experiment(context.Background(), "scaling")
	if err != nil {
		t.Fatal(err)
	}
	if res.ID != "scaling" || res.Table == nil {
		t.Fatalf("implausible scaling result: %+v", res)
	}
	// Quick grid: {2,4,8} sockets x 3 hosting topologies x 2 designs.
	if rows := res.Table.NumRows(); rows != 18 {
		t.Errorf("scaling table has %d rows, want 18", rows)
	}
	found := false
	for _, id := range ExperimentIDs() {
		if id == "scaling" {
			found = true
		}
	}
	if !found {
		t.Error("scaling missing from ExperimentIDs")
	}
}

// TestWorkloadsListing sanity-checks the registry projection.
func TestWorkloadsListing(t *testing.T) {
	ws := Workloads()
	if len(ws) == 0 {
		t.Fatal("no workloads listed")
	}
	suite := 0
	for _, w := range ws {
		if w.Name == "" || w.DefaultThreads <= 0 {
			t.Errorf("implausible workload info: %+v", w)
		}
		if w.InSuite {
			suite++
		}
	}
	if suite != 9 {
		t.Errorf("suite size %d, want the paper's nine", suite)
	}
}
