package c3d

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"

	"c3d/internal/trace"
	"c3d/internal/workload"
)

// WorkloadInfo describes one registered workload.
type WorkloadInfo struct {
	// Name is the workload name as used in the paper's figures.
	Name string `json:"name"`
	// Class is the suite the workload models ("parallel", "scale-out", ...).
	Class string `json:"class"`
	// SharedBytes is the unscaled size of the data shared by all threads.
	SharedBytes uint64 `json:"shared_bytes"`
	// DefaultThreads is the native thread count.
	DefaultThreads int `json:"default_threads"`
	// ReadFraction and CommFraction characterise the access mix.
	ReadFraction float64 `json:"read_fraction"`
	CommFraction float64 `json:"comm_fraction"`
	// DefaultPolicy is the best-performing placement policy from the
	// paper's profiling.
	DefaultPolicy Policy `json:"-"`
	// InSuite reports whether the workload is part of the paper's
	// nine-workload evaluation suite (the default experiment set).
	InSuite bool `json:"in_suite"`
}

// Workloads lists every registered workload — the paper's suite, the extras
// (mcf), and any workload-spec presets — in registration order, suite
// members first.
func Workloads() []WorkloadInfo {
	var out []WorkloadInfo
	for _, name := range workload.AllNames() {
		out = append(out, workloadInfoFor(workload.MustGet(name)))
	}
	return out
}

// ParseWorkload resolves a workload name against the open registry,
// mirroring ParseTopology: only registered workloads parse, and the error
// lists the known names sorted. Workloads defined by a session's
// workload-spec document are per-session, not registered — Simulate resolves
// those itself.
func ParseWorkload(s string) (WorkloadInfo, error) {
	spec, err := workload.Get(s)
	if err != nil {
		return WorkloadInfo{}, fmt.Errorf("c3d: %w", err)
	}
	return workloadInfoFor(spec), nil
}

// workloadInfoFor is the one spec→info projection Workloads and
// ParseWorkload share.
func workloadInfoFor(spec workload.Spec) WorkloadInfo {
	suite := false
	for _, name := range workload.Names() {
		if name == spec.Name {
			suite = true
			break
		}
	}
	return WorkloadInfo{
		Name:           spec.Name,
		Class:          spec.Class.String(),
		SharedBytes:    spec.SharedBytes,
		DefaultThreads: spec.DefaultThreads,
		ReadFraction:   spec.ReadFraction,
		CommFraction:   spec.CommFraction,
		DefaultPolicy:  spec.PreferredPolicy,
		InSuite:        suite,
	}
}

// TraceFormat selects the on-disk trace format for TraceEncode.
type TraceFormat int

const (
	// TraceV2 is the chunked, streamable format (the default).
	TraceV2 TraceFormat = iota
	// TraceV1 is the legacy flat format.
	TraceV1
)

// ParseTraceFormat converts "v1"/"v2" into a TraceFormat.
func ParseTraceFormat(s string) (TraceFormat, error) {
	switch s {
	case "v2":
		return TraceV2, nil
	case "v1":
		return TraceV1, nil
	default:
		return 0, fmt.Errorf("c3d: unknown trace format %q (want v1 or v2)", s)
	}
}

// TraceSource builds a streaming generator source for a workload under the
// session options (threads, scale, accesses, seed): records are produced on
// demand, so the source can drive paper-scale stream lengths at bounded
// memory.
func (s *Session) TraceSource(workloadName string, opts ...Option) (TraceSource, error) {
	cfg := s.cfg
	for _, opt := range opts {
		opt(&cfg)
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	spec, err := cfg.resolveWorkload(workloadName)
	if err != nil {
		return nil, err
	}
	return workload.NewSource(spec, workload.Options{
		Threads:           cfg.threads,
		Scale:             cfg.scale,
		AccessesPerThread: cfg.accesses,
		SeedOffset:        cfg.seed,
	})
}

// TraceFile is an open on-disk trace: a TraceSource plus the file it reads
// from. Close it when done.
type TraceFile struct {
	TraceSource
	f *os.File
}

// Close releases the underlying file.
func (t *TraceFile) Close() error {
	if t.f == nil {
		return nil
	}
	return t.f.Close()
}

// OpenTrace opens a binary trace written by TraceEncode (or cmd/c3dtrace).
// Chunked v2 files are streamed at bounded memory (one chunk per reader);
// legacy v1 files have no chunk framing and are decoded whole.
func OpenTrace(path string) (*TraceFile, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	src, err := trace.OpenSource(f, fi.Size())
	switch {
	case errors.Is(err, trace.ErrLegacyVersion):
		if _, err := f.Seek(0, io.SeekStart); err != nil {
			f.Close()
			return nil, err
		}
		tr, err := trace.Decode(f)
		if err != nil {
			f.Close()
			return nil, err
		}
		f.Close()
		return &TraceFile{TraceSource: tr.Source()}, nil
	case err != nil:
		f.Close()
		return nil, err
	default:
		return &TraceFile{TraceSource: src, f: f}, nil
	}
}

// TraceEncode writes the source to w in the selected binary format.
// Cancelling the context aborts the walk between records.
func TraceEncode(ctx context.Context, w io.Writer, src TraceSource, format TraceFormat) error {
	src = withContext(ctx, src)
	switch format {
	case TraceV1:
		tr, err := trace.Materialize(src)
		if err != nil {
			return err
		}
		return tr.Encode(w)
	default:
		return trace.EncodeSource(w, src)
	}
}

// ComputeTraceStats walks every stream of the source and summarises it.
// Cancelling the context aborts the walk between records.
func ComputeTraceStats(ctx context.Context, src TraceSource) (TraceStats, error) {
	return trace.ComputeStatsSource(withContext(ctx, src))
}

// withContext wraps a source so its readers observe ctx cancellation: the
// trace codec itself is context-free, and this adapter is how the SDK makes
// encode/stat walks over arbitrarily long streams abortable.
func withContext(ctx context.Context, src TraceSource) TraceSource {
	if ctx == nil || ctx.Done() == nil {
		return src
	}
	return &ctxSource{Source: src, ctx: ctx}
}

type ctxSource struct {
	trace.Source
	ctx context.Context
}

func (c *ctxSource) OpenInit() trace.RecordReader {
	return &ctxReader{RecordReader: c.Source.OpenInit(), ctx: c.ctx}
}

func (c *ctxSource) OpenThread(t int) trace.RecordReader {
	return &ctxReader{RecordReader: c.Source.OpenThread(t), ctx: c.ctx}
}

type ctxReader struct {
	trace.RecordReader
	ctx   context.Context
	steps int
	err   error
}

func (r *ctxReader) Next() (TraceRecord, bool) {
	if r.err != nil {
		return TraceRecord{}, false
	}
	// Check on the first record and every 4096 thereafter, so even short
	// streams observe cancellation promptly.
	if r.steps++; r.steps&4095 == 1 {
		if err := r.ctx.Err(); err != nil {
			r.err = err
			return TraceRecord{}, false
		}
	}
	return r.RecordReader.Next()
}

func (r *ctxReader) Err() error {
	if r.err != nil {
		return r.err
	}
	return r.RecordReader.Err()
}
