package c3d

import (
	"context"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"c3d/internal/wspec"

	// Importing the SDK loads the embedded workload-spec preset library, so
	// every client — CLIs, daemon, campaigns — sees the same preset
	// workloads.
	_ "c3d/internal/wspec/presets"
)

// WithWorkloadSpec attaches a workload-spec document (the internal/wspec
// JSON DSL) to the session. The document is parsed, validated and compiled
// eagerly — New/With report a bad spec immediately — and the compiled
// workload resolves wherever a workload name is expected: Simulate with an
// empty name (or the spec's own name) runs it, and experiment campaigns use
// it in place of the registry suite unless WithWorkloads picks an explicit
// set.
func WithWorkloadSpec(doc []byte) Option {
	return func(c *config) {
		c.specDoc = append([]byte(nil), doc...)
		c.spec = nil
		c.specErr = nil
	}
}

// WithWorkloadSpecFile is WithWorkloadSpec reading the document from a
// file. A read failure is reported by New/With, like any other bad option.
func WithWorkloadSpecFile(path string) Option {
	doc, err := os.ReadFile(path)
	return func(c *config) {
		if err != nil {
			c.specDoc, c.spec = nil, nil
			c.specErr = fmt.Errorf("c3d: reading workload spec: %w", err)
			return
		}
		c.specDoc = doc
		c.spec = nil
		c.specErr = nil
	}
}

// WorkloadSpecPresets lists the embedded workload-spec presets in
// registration order.
func WorkloadSpecPresets() []string { return wspec.Presets() }

// WorkloadSpecPreset returns the embedded preset's original document bytes
// — the exact bytes to pass to WithWorkloadSpec or ship to a remote daemon.
func WorkloadSpecPreset(name string) ([]byte, error) {
	doc, ok := wspec.PresetDoc(name)
	if !ok {
		known := wspec.Presets()
		sort.Strings(known)
		return nil, fmt.Errorf("c3d: unknown spec preset %q (known: %v)", name, known)
	}
	return doc, nil
}

// ReadWorkloadSpec resolves a CLI-style spec argument: "preset:<name>"
// returns the embedded preset's bytes, anything else is read as a file
// path. The CLIs' -spec flags all route through here.
func ReadWorkloadSpec(arg string) ([]byte, error) {
	if name, ok := strings.CutPrefix(arg, "preset:"); ok {
		return WorkloadSpecPreset(name)
	}
	doc, err := os.ReadFile(arg)
	if err != nil {
		return nil, fmt.Errorf("c3d: reading workload spec: %w", err)
	}
	return doc, nil
}

// OpenTextTrace streams an external text-format memory trace (see the
// internal/wspec format reference: `<init|thread> <r|w> <addr> [gap]` lines)
// as a TraceSource without materialising it. Pipe it through TraceEncode to
// ingest the trace into the chunked v2 binary format, or WriteTextTrace to
// go the other way.
func OpenTextTrace(path string) (TraceSource, error) {
	return wspec.OpenText(path)
}

// WriteTextTrace exports any trace source in the text format OpenTextTrace
// reads, making the round trip lossless.
func WriteTextTrace(ctx context.Context, w io.Writer, src TraceSource) error {
	return wspec.WriteText(w, withContext(ctx, src))
}
