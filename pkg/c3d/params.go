package c3d

import "fmt"

// Params is the flat, serialisable form of a session configuration: the
// shape CLI flags parse into and the c3dd job API accepts as JSON. Both
// resolve a Params to the same []Option via Options(), which is what makes
// the CLIs and the daemon provably one code path.
type Params struct {
	// Quick switches experiment campaigns to the reduced configuration.
	Quick bool `json:"quick,omitempty"`
	// Design names the coherence design for simulations ("c3d", ...).
	Design string `json:"design,omitempty"`
	// Policy pins the NUMA placement policy ("INT", "FT1", "FT2"); empty
	// means the workload's preferred policy.
	Policy string `json:"policy,omitempty"`
	// Topology names the fabric topology ("p2p", "ring", "mesh", "full");
	// empty means the socket count's default.
	Topology string `json:"topology,omitempty"`
	// Sockets, Threads, Accesses and Scale override the configuration's
	// machine and workload shape (0 = default).
	Sockets  int `json:"sockets,omitempty"`
	Threads  int `json:"threads,omitempty"`
	Accesses int `json:"accesses,omitempty"`
	Scale    int `json:"scale,omitempty"`
	// Warmup overrides the warm-up fraction (nil = default 0.25).
	Warmup *float64 `json:"warmup,omitempty"`
	// Workloads restricts experiment campaigns to a subset.
	Workloads []string `json:"workloads,omitempty"`
	// Parallelism bounds concurrent simulations / checker workers
	// (0 = GOMAXPROCS; results identical at any value).
	Parallelism int `json:"parallel,omitempty"`
	// Stream selects streaming generation (nil = the method's default:
	// streaming for simulations, materialised for campaigns).
	Stream *bool `json:"stream,omitempty"`
	// Seed offsets workload generation.
	Seed int64 `json:"seed,omitempty"`
	// BroadcastFilter enables the §IV-D private-page broadcast filter.
	BroadcastFilter bool `json:"broadcast_filter,omitempty"`
}

// Options resolves the params into session options, validating the
// enumerated fields (design, policy) and rejecting negative numeric
// overrides — dropping them silently would run a configuration the caller
// never asked for.
func (p Params) Options() ([]Option, error) {
	for name, v := range map[string]int{
		"sockets":  p.Sockets,
		"threads":  p.Threads,
		"accesses": p.Accesses,
		"scale":    p.Scale,
		"parallel": p.Parallelism,
	} {
		if v < 0 {
			return nil, fmt.Errorf("c3d: negative %s %d", name, v)
		}
	}
	var opts []Option
	if p.Quick {
		opts = append(opts, WithQuick())
	}
	if p.Design != "" {
		d, err := ParseDesign(p.Design)
		if err != nil {
			return nil, err
		}
		opts = append(opts, WithDesign(d))
	}
	if p.Policy != "" {
		pol, err := ParsePolicy(p.Policy)
		if err != nil {
			return nil, err
		}
		opts = append(opts, WithPolicy(pol))
	}
	if p.Topology != "" {
		topo, err := ParseTopology(p.Topology)
		if err != nil {
			return nil, err
		}
		opts = append(opts, WithTopology(topo))
	}
	if p.Sockets > 0 {
		opts = append(opts, WithSockets(p.Sockets))
	}
	if p.Threads > 0 {
		opts = append(opts, WithThreads(p.Threads))
	}
	if p.Accesses > 0 {
		opts = append(opts, WithAccesses(p.Accesses))
	}
	if p.Scale > 0 {
		opts = append(opts, WithScale(p.Scale))
	}
	if p.Warmup != nil {
		opts = append(opts, WithWarmup(*p.Warmup))
	}
	if len(p.Workloads) > 0 {
		opts = append(opts, WithWorkloads(p.Workloads...))
	}
	if p.Parallelism > 0 {
		opts = append(opts, WithParallelism(p.Parallelism))
	}
	if p.Stream != nil {
		opts = append(opts, WithStreaming(*p.Stream))
	}
	if p.Seed != 0 {
		opts = append(opts, WithSeed(p.Seed))
	}
	if p.BroadcastFilter {
		opts = append(opts, WithBroadcastFilter(true))
	}
	return opts, nil
}

// Session builds a Session directly from the params (plus any extra
// options, applied after).
func (p Params) Session(extra ...Option) (*Session, error) {
	opts, err := p.Options()
	if err != nil {
		return nil, err
	}
	return New(append(opts, extra...)...)
}
