package c3d

import (
	"fmt"

	"c3d/pkg/c3d/api"
)

// Params is the flat, serialisable form of a session configuration: the
// shape CLI flags parse into and the c3dd job API accepts as JSON. Both
// resolve a Params to the same []Option via Options(), which is what makes
// the CLIs and the daemon provably one code path.
//
// The struct itself — fields and JSON tags — is defined once, in
// pkg/c3d/api (the wire-contract package), and Params is a defined type
// over it: convert with api.Params(p) / Params(w) when crossing between
// SDK calls and wire documents. The two can never drift because they are
// one declaration.
type Params api.Params

// Options resolves the params into session options, validating the
// enumerated fields (design, policy) and rejecting negative numeric
// overrides — dropping them silently would run a configuration the caller
// never asked for.
func (p Params) Options() ([]Option, error) {
	for _, field := range []struct {
		name string
		v    int
	}{
		{"sockets", p.Sockets},
		{"threads", p.Threads},
		{"accesses", p.Accesses},
		{"scale", p.Scale},
		{"parallel", p.Parallelism},
	} {
		if field.v < 0 {
			// Checked in declaration order so a spec with several negative
			// fields always reports the same one first.
			return nil, fmt.Errorf("c3d: negative %s %d", field.name, field.v)
		}
	}
	var opts []Option
	if p.Quick {
		opts = append(opts, WithQuick())
	}
	if p.Design != "" {
		d, err := ParseDesign(p.Design)
		if err != nil {
			return nil, err
		}
		opts = append(opts, WithDesign(d))
	}
	if p.Policy != "" {
		pol, err := ParsePolicy(p.Policy)
		if err != nil {
			return nil, err
		}
		opts = append(opts, WithPolicy(pol))
	}
	if p.Topology != "" {
		topo, err := ParseTopology(p.Topology)
		if err != nil {
			return nil, err
		}
		opts = append(opts, WithTopology(topo))
	}
	if p.Sockets > 0 {
		opts = append(opts, WithSockets(p.Sockets))
	}
	if p.Threads > 0 {
		opts = append(opts, WithThreads(p.Threads))
	}
	if p.Accesses > 0 {
		opts = append(opts, WithAccesses(p.Accesses))
	}
	if p.Scale > 0 {
		opts = append(opts, WithScale(p.Scale))
	}
	if p.Warmup != nil {
		opts = append(opts, WithWarmup(*p.Warmup))
	}
	if len(p.Workloads) > 0 {
		opts = append(opts, WithWorkloads(p.Workloads...))
	}
	if p.Parallelism > 0 {
		opts = append(opts, WithParallelism(p.Parallelism))
	}
	if p.Stream != nil {
		opts = append(opts, WithStreaming(*p.Stream))
	}
	if p.Seed != 0 {
		opts = append(opts, WithSeed(p.Seed))
	}
	if p.BroadcastFilter {
		opts = append(opts, WithBroadcastFilter(true))
	}
	if len(p.Spec) > 0 {
		opts = append(opts, WithWorkloadSpec(p.Spec))
	}
	if p.Sampling != "" {
		spec, err := ParseSampling(p.Sampling)
		if err != nil {
			return nil, err
		}
		opts = append(opts, WithSampling(spec))
	}
	return opts, nil
}

// Session builds a Session directly from the params (plus any extra
// options, applied after).
func (p Params) Session(extra ...Option) (*Session, error) {
	opts, err := p.Options()
	if err != nil {
		return nil, err
	}
	return New(append(opts, extra...)...)
}
