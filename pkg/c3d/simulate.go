package c3d

import (
	"context"
	"fmt"

	"c3d/internal/machine"
	"c3d/internal/workload"
)

// SimulateResult is the outcome of one Simulate call: the full machine-level
// result plus how the request was resolved.
type SimulateResult struct {
	RunResult
	// RequestedThreads is the thread count asked for (the workload's native
	// count when none was set) and EffectiveThreads the count that actually
	// ran: a request exceeding the machine's cores is clamped, and
	// ThreadsClamped set, so callers can surface the difference instead of
	// silently reporting on a smaller run.
	RequestedThreads int
	EffectiveThreads int
	ThreadsClamped   bool
	// Streamed reports whether the run used the streaming generator
	// (bounded memory) or a materialised trace. Results are bit-identical
	// either way.
	Streamed bool
}

// Simulate runs one workload on one machine configuration under the
// session's design and returns the detailed statistics. Per-call options
// override the session's for this run only.
//
// Cancelling the context aborts the simulation between accesses and returns
// ctx's error.
func (s *Session) Simulate(ctx context.Context, workloadName string, opts ...Option) (*SimulateResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	cfg := s.cfg
	for _, opt := range opts {
		opt(&cfg)
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	spec, err := cfg.resolveWorkload(workloadName)
	if err != nil {
		return nil, err
	}

	mcfg := cfg.machineConfigFor(spec)
	scale := mcfg.Scale

	requested := spec.DefaultThreads
	if cfg.threads > 0 {
		requested = cfg.threads
	}
	threads := requested
	clamped := false
	if threads > mcfg.Cores() {
		threads = mcfg.Cores()
		clamped = true
	}

	m, err := newMachine(mcfg)
	if err != nil {
		return nil, err
	}
	genOpts := workload.Options{
		Threads:           threads,
		Scale:             scale,
		AccessesPerThread: cfg.accesses,
		SeedOffset:        cfg.seed,
	}
	runOpts := machine.DefaultRunOptions()
	if cfg.warmupSet {
		runOpts.WarmupFraction = cfg.warmup
	}
	runOpts.Sampling = cfg.sampling

	// Streaming is Simulate's default long-run mode: memory stays bounded at
	// any stream length. WithStreaming(false) opts into a materialised trace.
	streamed := !cfg.streamingSet || cfg.streaming
	var res RunResult
	if streamed {
		src, err := workload.NewSource(spec, genOpts)
		if err != nil {
			return nil, err
		}
		res, err = m.RunSource(ctx, src, runOpts)
		if err != nil {
			return nil, err
		}
	} else {
		tr, err := workload.Generate(spec, genOpts)
		if err != nil {
			return nil, err
		}
		res, err = m.Run(ctx, tr, runOpts)
		if err != nil {
			return nil, err
		}
	}
	out := &SimulateResult{
		RunResult:        res,
		RequestedThreads: requested,
		EffectiveThreads: threads,
		ThreadsClamped:   clamped,
		Streamed:         streamed,
	}
	return out, nil
}

// machineConfigFor resolves the session options into the machine
// configuration a simulation of spec would run on — the single source of
// truth shared by Simulate and MachineConfigFor.
func (c config) machineConfigFor(spec workload.Spec) machine.Config {
	sockets := c.effectiveSockets()
	scale := c.scale
	if scale <= 0 {
		scale = workload.DefaultScale
	}
	mcfg := machine.DefaultConfig(sockets, c.design)
	mcfg.Topology = c.topology
	mcfg.Scale = scale
	mcfg.MemPolicy = c.workloadPolicy(spec)
	mcfg.EnableBroadcastFilter = c.broadcastFilter
	if c.coresPerSocket > 0 {
		mcfg.CoresPerSocket = c.coresPerSocket
	}
	return mcfg
}

// MachineConfigFor resolves the machine configuration Simulate would use for
// a workload under this session — useful for inspecting capacities before a
// run.
func (s *Session) MachineConfigFor(workloadName string) (MachineConfig, error) {
	spec, err := s.cfg.resolveWorkload(workloadName)
	if err != nil {
		return MachineConfig{}, err
	}
	mcfg := s.cfg.machineConfigFor(spec)
	if err := mcfg.Validate(); err != nil {
		return MachineConfig{}, fmt.Errorf("c3d: %w", err)
	}
	return mcfg, nil
}
