package c3d

import (
	"fmt"
	"runtime/debug"
)

// Build metadata, stamped by the Makefile via
//
//	-ldflags "-X c3d/pkg/c3d.buildVersion=... -X c3d/pkg/c3d.buildCommit=... -X c3d/pkg/c3d.buildDate=..."
//
// and shared by every binary's -version flag.
var (
	buildVersion = "dev"
	buildCommit  = ""
	buildDate    = ""
)

// Version returns the build's version string. Unstamped builds (plain
// `go build`) fall back to the module's VCS metadata when available.
func Version() string {
	commit, date := buildCommit, buildDate
	if commit == "" {
		if info, ok := debug.ReadBuildInfo(); ok {
			for _, s := range info.Settings {
				switch s.Key {
				case "vcs.revision":
					if len(s.Value) >= 12 {
						commit = s.Value[:12]
					} else {
						commit = s.Value
					}
				case "vcs.time":
					date = s.Value
				}
			}
		}
	}
	out := buildVersion
	if commit != "" {
		out += fmt.Sprintf(" (%s)", commit)
	}
	if date != "" {
		out += " " + date
	}
	return out
}
